package mapreduce_test

// Black-box tests of the task-attempt supervision layer across all
// three dataflows: transient faults are retried to an identical result,
// exhausted or fatal faults surface as *TaskError with a clean spill
// root, per-attempt timeouts retry, and stragglers get a real
// speculative backup whose winner commits exactly once. Every test
// asserts the goroutine count returns to its pre-run baseline.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/testleak"
)

var allDataflows = map[string]mapreduce.DataflowMode{
	"typed":    mapreduce.DataflowTyped,
	"boxed":    mapreduce.DataflowBoxed,
	"external": mapreduce.DataflowExternal,
}

// clearAttemptCounters zeroes the execution-history counters (see the
// Metrics doc: they describe how the run executed, not what it
// computed) so faulted and fault-free Results compare byte-for-byte.
func clearAttemptCounters(m *mapreduce.Metrics) {
	m.Attempts = 0
	m.Retries = 0
	m.SpeculativeLaunched = 0
	m.SpeculativeWon = 0
}

// normalize strips all execution-history counters from a result.
func normalize(res *mapreduce.Result[string, mapreduce.Pair[string, int]]) {
	clearAttemptCounters(&res.Metrics)
	clearSpillCounters(res.MapMetrics)
	clearSpillCounters(res.ReduceMetrics)
}

// failFirstAttempt fails attempt 1 of every task at the given point
// with a transient error.
func failFirstAttempt(at mapreduce.FaultPoint) mapreduce.FaultHook {
	return func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
		if point == at && attempt == 1 {
			return fmt.Errorf("injected %s fault (%s task %d)", point, phase, task)
		}
		return nil
	}
}

func TestRetryTransientFault(t *testing.T) {
	const m, r = 3, 4
	input := wordInput(m)
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	for dname, dataflow := range allDataflows {
		for _, at := range []mapreduce.FaultPoint{mapreduce.FaultTaskStart, mapreduce.FaultEmit} {
			t.Run(fmt.Sprintf("%s/%s", dname, at), func(t *testing.T) {
				before := testleak.Snapshot()
				e, _ := engineFor(t, dataflow)
				e.FaultHook = failFirstAttempt(at)
				res, err := wordJob(r, false).Run(e, input)
				if err != nil {
					t.Fatal(err)
				}
				testleak.Check(t, before)
				// Every task's first attempt failed, so each of the m+r
				// tasks ran exactly twice.
				if res.Retries != m+r {
					t.Fatalf("Retries = %d, want %d", res.Retries, m+r)
				}
				if res.Attempts != 2*(m+r) {
					t.Fatalf("Attempts = %d, want %d", res.Attempts, 2*(m+r))
				}
				normalize(res)
				if !reflect.DeepEqual(res, baseline) {
					t.Fatal("retried run diverges from fault-free run")
				}
			})
		}
	}
}

func TestRetryExhaustedFailsWithTaskError(t *testing.T) {
	for dname, dataflow := range allDataflows {
		t.Run(dname, func(t *testing.T) {
			before := testleak.Snapshot()
			e, tmp := engineFor(t, dataflow)
			e.Retry.MaxAttempts = 3
			e.Retry.BaseBackoff = time.Microsecond
			e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
				if phase == mapreduce.MapTask && task == 1 && point == mapreduce.FaultTaskStart {
					return errors.New("persistent map fault")
				}
				return nil
			}
			res, err := wordJob(4, false).Run(e, wordInput(3))
			if res != nil || err == nil {
				t.Fatalf("res=%v err=%v, want nil result and an error", res, err)
			}
			testleak.Check(t, before)
			var te *mapreduce.TaskError
			if !errors.As(err, &te) {
				t.Fatalf("error %v does not carry a *TaskError", err)
			}
			if te.Phase != mapreduce.MapTask || te.Task != 1 || te.Attempt != 3 {
				t.Fatalf("TaskError = {%v task %d attempt %d}, want {map task 1 attempt 3}", te.Phase, te.Task, te.Attempt)
			}
			if te.Cause == nil || te.Cause.Error() != "persistent map fault" {
				t.Fatalf("Cause = %v, want the injected fault", te.Cause)
			}
			if tmp != "" {
				if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
					t.Fatalf("spill root not cleaned after failed run: %v", ents)
				}
			}
		})
	}
}

func TestFatalFaultFailsFirstAttempt(t *testing.T) {
	for dname, dataflow := range allDataflows {
		t.Run(dname, func(t *testing.T) {
			before := testleak.Snapshot()
			var starts atomic.Int64
			e, tmp := engineFor(t, dataflow)
			e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
				if phase == mapreduce.ReduceTask && task == 0 && point == mapreduce.FaultTaskStart {
					starts.Add(1)
					return mapreduce.Fatal(errors.New("deterministic bug"))
				}
				return nil
			}
			_, err := wordJob(4, false).Run(e, wordInput(2))
			if err == nil {
				t.Fatal("fatal fault did not fail the run")
			}
			testleak.Check(t, before)
			var te *mapreduce.TaskError
			if !errors.As(err, &te) || te.Phase != mapreduce.ReduceTask || te.Task != 0 || te.Attempt != 1 {
				t.Fatalf("err = %v, want reduce task 0 failing on attempt 1", err)
			}
			if n := starts.Load(); n != 1 {
				t.Fatalf("fatal task started %d attempts, want 1 (no retry)", n)
			}
			if tmp != "" {
				if ents, _ := os.ReadDir(tmp); len(ents) != 0 {
					t.Fatalf("spill root not cleaned: %v", ents)
				}
			}
		})
	}
}

func TestRetryableClassifierStopsRetry(t *testing.T) {
	before := testleak.Snapshot()
	e := &mapreduce.Engine{Parallelism: 2}
	e.Retry.Retryable = func(error) bool { return false }
	e.FaultHook = failFirstAttempt(mapreduce.FaultTaskStart)
	_, err := wordJob(2, false).Run(e, wordInput(1))
	var te *mapreduce.TaskError
	if !errors.As(err, &te) || te.Attempt != 1 {
		t.Fatalf("err = %v, want a first-attempt TaskError under a false classifier", err)
	}
	testleak.Check(t, before)
}

func TestTaskTimeoutRetries(t *testing.T) {
	const m, r = 2, 3
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, wordInput(m))
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	before := testleak.Snapshot()
	e := &mapreduce.Engine{Parallelism: 2}
	e.Retry.TaskTimeout = 20 * time.Millisecond
	e.Retry.BaseBackoff = time.Microsecond
	// Attempt 1 of map task 0 hangs until its per-attempt deadline
	// cancels it; the retry runs clean.
	e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
		if phase == mapreduce.MapTask && task == 0 && attempt == 1 && point == mapreduce.FaultTaskStart {
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	}
	res, err := wordJob(r, false).Run(e, wordInput(m))
	if err != nil {
		t.Fatal(err)
	}
	testleak.Check(t, before)
	if res.Retries != 1 || res.Attempts != m+r+1 {
		t.Fatalf("Attempts/Retries = %d/%d, want %d/1", res.Attempts, res.Retries, m+r+1)
	}
	normalize(res)
	if !reflect.DeepEqual(res, baseline) {
		t.Fatal("timed-out-and-retried run diverges from fault-free run")
	}
}

// specPolicy is the aggressive straggler policy the speculation tests
// share: back up any task 1.5× slower than the median, checking every
// millisecond, with a 5ms floor.
func specPolicy() mapreduce.RetryPolicy {
	return mapreduce.RetryPolicy{
		SpeculativeSlowdown: 1.5,
		SpeculativeInterval: time.Millisecond,
		SpeculativeMinAge:   5 * time.Millisecond,
	}
}

func TestSpeculativeBackupWins(t *testing.T) {
	const m, r = 4, 4
	input := wordInput(m)
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	for _, dname := range []string{"typed", "external"} {
		t.Run(dname, func(t *testing.T) {
			before := testleak.Snapshot()
			e, _ := engineFor(t, allDataflows[dname])
			e.Retry = specPolicy()
			// Attempt 1 of map task 0 straggles forever; only the backup
			// (attempt 2) can finish the task.
			e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
				if phase == mapreduce.MapTask && task == 0 && attempt == 1 && point == mapreduce.FaultTaskStart {
					<-ctx.Done()
					return ctx.Err()
				}
				return nil
			}
			res, err := wordJob(r, false).Run(e, input)
			if err != nil {
				t.Fatal(err)
			}
			testleak.Check(t, before)
			if res.SpeculativeLaunched < 1 {
				t.Fatalf("SpeculativeLaunched = %d, want >= 1", res.SpeculativeLaunched)
			}
			if res.SpeculativeWon < 1 {
				t.Fatalf("SpeculativeWon = %d, want >= 1 (only the backup could finish)", res.SpeculativeWon)
			}
			normalize(res)
			if !reflect.DeepEqual(res, baseline) {
				t.Fatal("speculative run diverges from fault-free run")
			}
		})
	}
}

func TestSpeculativePrimaryWins(t *testing.T) {
	const m, r = 4, 4
	input := wordInput(m)
	baseline, err := wordJob(r, false).Run(&mapreduce.Engine{}, input)
	if err != nil {
		t.Fatal(err)
	}
	normalize(baseline)
	before := testleak.Snapshot()
	e := &mapreduce.Engine{Parallelism: 4}
	e.Retry = specPolicy()
	// The primary of map task 0 straggles long enough for a backup to
	// launch but then completes; the backup blocks until the winning
	// primary cancels it, so it can never commit.
	e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
		if phase != mapreduce.MapTask || task != 0 || point != mapreduce.FaultTaskStart {
			return nil
		}
		if attempt == 1 {
			select {
			case <-time.After(150 * time.Millisecond):
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		<-ctx.Done()
		return ctx.Err()
	}
	res, err := wordJob(r, false).Run(e, input)
	if err != nil {
		t.Fatal(err)
	}
	testleak.Check(t, before)
	if res.SpeculativeLaunched < 1 {
		t.Fatalf("SpeculativeLaunched = %d, want >= 1", res.SpeculativeLaunched)
	}
	if res.SpeculativeWon != 0 {
		t.Fatalf("SpeculativeWon = %d, want 0 (backup can never commit)", res.SpeculativeWon)
	}
	normalize(res)
	if !reflect.DeepEqual(res, baseline) {
		t.Fatal("speculative run diverges from fault-free run")
	}
}

// TestPanicInUserCodeRecovered: a panic in user map/reduce code fails
// the attempt (not the process) and retries; a panicking final attempt
// surfaces as a TaskError whose cause carries the panic text.
func TestPanicInUserCodeRecovered(t *testing.T) {
	for dname, dataflow := range allDataflows {
		t.Run(dname, func(t *testing.T) {
			before := testleak.Snapshot()
			var once atomic.Bool
			j := wordJob(3, false)
			inner := j.NewMapper
			j.NewMapper = func() mapreduce.Mapper[string, string, int] {
				mp := inner()
				return &mapreduce.MapperFunc[string, string, int]{
					OnMap: func(ctx *mapreduce.MapContext[string, string, int], line string) {
						if once.CompareAndSwap(false, true) {
							panic("user map bug")
						}
						mp.Map(ctx, line)
					},
				}
			}
			e, _ := engineFor(t, dataflow)
			e.Retry.BaseBackoff = time.Microsecond
			res, err := j.Run(e, wordInput(2))
			if err != nil {
				t.Fatalf("panic was not retried: %v", err)
			}
			if res.Retries != 1 {
				t.Fatalf("Retries = %d, want 1", res.Retries)
			}
			testleak.Check(t, before)
		})
	}
}

func TestPanicExhaustsIntoTaskError(t *testing.T) {
	j := wordJob(2, false)
	j.NewMapper = func() mapreduce.Mapper[string, string, int] {
		return &mapreduce.MapperFunc[string, string, int]{
			OnMap: func(ctx *mapreduce.MapContext[string, string, int], line string) {
				panic("always down")
			},
		}
	}
	e := &mapreduce.Engine{Parallelism: 2}
	e.Retry.MaxAttempts = 2
	e.Retry.BaseBackoff = time.Microsecond
	_, err := j.Run(e, wordInput(1))
	var te *mapreduce.TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want a TaskError", err)
	}
	if te.Phase != mapreduce.MapTask || te.Attempt != 2 {
		t.Fatalf("TaskError = %+v, want map phase, attempt 2", te)
	}
	if got := te.Cause.Error(); got != "panic: always down" {
		t.Fatalf("Cause = %q, want the recovered panic", got)
	}
}
