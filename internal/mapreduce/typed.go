package mapreduce

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// This file is the typed engine: the generic, boxing-free realization of
// the execution model described in the package comment. A Job[I, K, V, O]
// fixes four concrete types —
//
//	I – one map-input record (and, by convention, one side-output
//	    record: SideEmit writes records of the input type so a
//	    pipeline's next job can consume SideOutput as its input),
//	K – the intermediate (shuffle) key,
//	V – the intermediate value,
//	O – one reduce-output record —
//
// so map output, spill buckets, the map-side stable sort, the k-way
// merge heap, and reduce group buffers all hold concrete types with zero
// per-record interface boxing. An optional KeyCoding[K] additionally
// turns most sort/merge/group comparisons into one or two uint64
// compares (see keycode.go).

// Pair is a plain typed key-value record. It is the input/output record
// shape used throughout the pipeline (e.g. blocking-key-annotated
// entities, emitted match pairs).
type Pair[K, V any] struct {
	Key   K
	Value V
}

// Rec is one intermediate record in flight between a map task and a
// reduce task: the key/value pair plus the engine-internal binary key
// code (zero when the job has no KeyCoding). Reducers receive group
// value lists as []Rec and should read Key/Value only.
type Rec[K, V any] struct {
	code  Code
	Key   K
	Value V
}

// Mapper is the typed counterpart of BoxedMapper, instantiated once per
// map task. Configure receives the task's partition index before any Map
// call, mirroring Hadoop's Mapper.configure.
type Mapper[I, K, V any] interface {
	Configure(m, r, partitionIndex int)
	Map(ctx *MapContext[I, K, V], rec I)
}

// Reducer is the typed counterpart of BoxedReducer, instantiated once
// per reduce task. Reduce is called once per key group with the group's
// first key and all values in merged order. The values slice is only
// valid for the duration of the call: the engine streams groups out of
// the shuffle merge through a reused buffer. Implementations that need
// values beyond the call must copy them.
type Reducer[K, V, O any] interface {
	Configure(m, r, taskIndex int)
	Reduce(ctx *ReduceContext[O], key K, values []Rec[K, V])
}

// Combiner runs over each map task's output before the shuffle, grouped
// with the same Group/Compare as the reduce side, re-emitting
// intermediate (K, V) pairs — the standard Hadoop combiner optimization.
type Combiner[I, K, V any] interface {
	Configure(m, r, taskIndex int)
	Combine(ctx *MapContext[I, K, V], key K, values []Rec[K, V])
}

// Job describes one typed MapReduce job. NewMapper/NewReducer are
// factories so that concurrently executing tasks never share mutable
// state.
type Job[I, K, V, O any] struct {
	Name string

	// NumReduceTasks is r. The number of map tasks m always equals the
	// number of input partitions passed to Run.
	NumReduceTasks int

	NewMapper  func() Mapper[I, K, V]
	NewReducer func() Reducer[K, V, O]

	// Partition implements part: key -> reduce task in [0,r).
	Partition func(key K, numReduceTasks int) int
	// Compare implements comp: total order on keys (-1, 0, +1).
	Compare func(a, b K) int
	// Group implements group: keys a and b belong to the same reduce
	// call iff Group(a,b) == 0. It must be compatible with Compare
	// (groups are runs of the sorted order). When nil, Compare is used.
	Group func(a, b K) int

	// NewCombiner, when non-nil, enables the map-side combiner.
	NewCombiner func() Combiner[I, K, V]

	// Coding is the optional order-preserving binary key code (see
	// keycode.go). The zero value disables the fast path.
	Coding KeyCoding[K]
}

// JobName returns the job's name (JobRunner).
func (j *Job[I, K, V, O]) JobName() string { return j.Name }

// JobRunner is the type-erased face of a Job: it hides the intermediate
// K and V types so heterogeneous jobs that share input and output record
// types (e.g. the five redistribution strategies) can stand behind one
// interface.
//
// RunContext is the primary entry point; Run is the pre-context adapter
// (kept for one release of compatibility) and RunStream additionally
// streams reduce output to a callback instead of accumulating it in
// Result.Output — the constant-memory output path.
type JobRunner[I, O any] interface {
	Run(e *Engine, input [][]I) (*Result[I, O], error)
	RunContext(ctx context.Context, e *Engine, input [][]I) (*Result[I, O], error)
	RunStream(ctx context.Context, e *Engine, input [][]I, out func(O) error) (*Result[I, O], error)
	JobName() string
}

// outputSink serializes streamed reduce output across concurrently
// executing reduce tasks: records are handed to fn under a mutex, in
// emission order within one reduce task (the order across tasks is the
// tasks' completion interleaving — deterministic only at Parallelism 1).
// The first callback error is sticky: later writes become no-ops and the
// run fails with it after the reduce phase.
type outputSink[O any] struct {
	mu  sync.Mutex
	fn  func(O) error
	err error
}

// writeAll drains one committed reduce attempt's buffered output under a
// single lock acquisition, preserving the attempt's emission order. The
// commit protocol funnels all sink output through here: records of a
// failed or superseded attempt never reach the sink.
func (s *outputSink[O]) writeAll(recs []O) {
	s.mu.Lock()
	for i := range recs {
		if s.err != nil {
			break
		}
		s.err = s.fn(recs[i])
	}
	s.mu.Unlock()
}

// Err returns the sticky first write error, if any.
func (s *outputSink[O]) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Result is the outcome of a typed job execution.
type Result[I, O any] struct {
	Metrics
	// Output contains the concatenated reduce outputs in reduce task
	// order (within a task, in emission order).
	Output []O
	// SideOutput holds each map task's side output, indexed by map task
	// (= input partition) index. Side records have the input type I so a
	// follow-up job can consume them as its partitioned input.
	SideOutput [][]I
}

// MapContext is passed to map (and combine) calls for emitting
// intermediate output and updating counters. It is owned by a single
// task; methods are not safe for concurrent use by multiple goroutines.
type MapContext[I, K, V any] struct {
	metrics *TaskMetrics
	out     []Rec[K, V]
	side    []I
	// sideCap sizes the side-output buffer on first use: side emitters
	// (the BDM job) write at most one record per input record, so the
	// task's input size is an exact upper bound and the buffer never
	// regrows.
	sideCap int
	encode  func(K) Code
	// boxed, when non-nil, redirects all emissions and counters through
	// the boxed oracle context (see oracle.go).
	boxed *BoxedContext
	// spill, when non-nil, redirects emissions into the external
	// dataflow's spiller instead of the in-memory out buffer (see
	// external.go).
	spill *extSpiller[K, V]
	// hook is the attempt's fault-injection binding (nil when the engine
	// has no FaultHook installed).
	hook *taskHook
}

// Emit appends an intermediate key-value pair to the task's output,
// computing the key's binary code once if the job has a KeyCoding.
func (c *MapContext[I, K, V]) Emit(key K, value V) {
	if c.boxed != nil {
		c.boxed.Emit(key, value)
		return
	}
	c.hook.fireEmit()
	var code Code
	if c.encode != nil {
		code = c.encode(key)
	}
	if c.spill != nil {
		c.spill.add(Rec[K, V]{code: code, Key: key, Value: value})
		c.metrics.OutputRecords++
		return
	}
	c.out = append(c.out, Rec[K, V]{code: code, Key: key, Value: value})
	c.metrics.OutputRecords++
}

// SideEmit writes a record of the input type to the task's side output,
// bypassing the shuffle. The BDM job uses it for the "additionalOutput"
// of Algorithm 3: blocking-key-annotated entities, written per map task
// so the second job sees the identical input partitioning.
func (c *MapContext[I, K, V]) SideEmit(rec I) {
	if c.boxed != nil {
		c.boxed.SideEmit(rec, nil)
		return
	}
	if c.side == nil && c.sideCap > 0 {
		c.side = make([]I, 0, c.sideCap)
	}
	c.side = append(c.side, rec)
	c.metrics.SideOutputRecords++
}

// Inc adds delta to the named user counter for this task.
// ComparisonsCounter takes an allocation-free fast path.
func (c *MapContext[I, K, V]) Inc(name string, delta int64) {
	if c.boxed != nil {
		c.boxed.Inc(name, delta)
		return
	}
	incCounter(c.metrics, name, delta)
}

// ReduceContext is passed to reduce calls for emitting output records
// and updating counters.
type ReduceContext[O any] struct {
	metrics *TaskMetrics
	out     []O
	boxed   *BoxedContext
	// hook is the attempt's fault-injection binding (nil when the engine
	// has no FaultHook installed).
	hook *taskHook
}

// Emit appends one record to the attempt's buffered output. Under
// RunStream the buffer is drained to the run's output sink when the
// attempt commits — never earlier, so a failed, retried, or superseded
// attempt cannot double-emit (the task-commit protocol).
func (c *ReduceContext[O]) Emit(rec O) {
	if c.boxed != nil {
		c.boxed.Emit(rec, nil)
		return
	}
	c.hook.fireEmit()
	c.out = append(c.out, rec)
	c.metrics.OutputRecords++
}

// Inc adds delta to the named user counter for this task.
func (c *ReduceContext[O]) Inc(name string, delta int64) {
	if c.boxed != nil {
		c.boxed.Inc(name, delta)
		return
	}
	incCounter(c.metrics, name, delta)
}

// incCounter is the shared counter-update path (mirrors BoxedContext.Inc).
func incCounter(metrics *TaskMetrics, name string, delta int64) {
	if name == ComparisonsCounter {
		metrics.Comparisons += delta
		return
	}
	m := metrics.Counters
	if m == nil {
		// The map is created lazily on the first named counter: most
		// tasks only touch the Comparisons fast path and never pay for
		// the allocation.
		m = make(map[string]int64)
		metrics.Counters = m
	}
	m[name] += delta
}

// MapperFunc adapts plain functions to the Mapper interface.
type MapperFunc[I, K, V any] struct {
	OnConfigure func(m, r, partitionIndex int)
	OnMap       func(ctx *MapContext[I, K, V], rec I)
}

// Configure implements Mapper.
func (f *MapperFunc[I, K, V]) Configure(m, r, partitionIndex int) {
	if f.OnConfigure != nil {
		f.OnConfigure(m, r, partitionIndex)
	}
}

// Map implements Mapper.
func (f *MapperFunc[I, K, V]) Map(ctx *MapContext[I, K, V], rec I) { f.OnMap(ctx, rec) }

// ReducerFunc adapts plain functions to the Reducer interface.
type ReducerFunc[K, V, O any] struct {
	OnConfigure func(m, r, taskIndex int)
	OnReduce    func(ctx *ReduceContext[O], key K, values []Rec[K, V])
}

// Configure implements Reducer.
func (f *ReducerFunc[K, V, O]) Configure(m, r, taskIndex int) {
	if f.OnConfigure != nil {
		f.OnConfigure(m, r, taskIndex)
	}
}

// Reduce implements Reducer.
func (f *ReducerFunc[K, V, O]) Reduce(ctx *ReduceContext[O], key K, values []Rec[K, V]) {
	f.OnReduce(ctx, key, values)
}

func (j *Job[I, K, V, O]) validate(numPartitions int) error {
	switch {
	case j.NumReduceTasks <= 0:
		return fmt.Errorf("mapreduce: job %q: NumReduceTasks must be > 0, got %d", j.Name, j.NumReduceTasks)
	case numPartitions <= 0:
		return fmt.Errorf("mapreduce: job %q: need at least one input partition", j.Name)
	case j.NewMapper == nil:
		return fmt.Errorf("mapreduce: job %q: NewMapper is required", j.Name)
	case j.NewReducer == nil:
		return fmt.Errorf("mapreduce: job %q: NewReducer is required", j.Name)
	case j.Partition == nil:
		return fmt.Errorf("mapreduce: job %q: Partition function is required", j.Name)
	case j.Compare == nil:
		return fmt.Errorf("mapreduce: job %q: Compare function is required", j.Name)
	case j.Coding.Encode == nil && (j.Coding.Exact || j.Coding.GroupBits != 0):
		return fmt.Errorf("mapreduce: job %q: KeyCoding.Exact/GroupBits require an Encode function", j.Name)
	case j.Coding.GroupBits < 0 || j.Coding.GroupBits > 128:
		return fmt.Errorf("mapreduce: job %q: KeyCoding.GroupBits must be in [0,128], got %d", j.Name, j.Coding.GroupBits)
	}
	return nil
}

// Run executes the job over the given input partitions and returns the
// result — the pre-context adapter over RunContext, kept for one release
// of compatibility.
func (j *Job[I, K, V, O]) Run(e *Engine, input [][]I) (*Result[I, O], error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return j.RunContext(context.Background(), e, input)
}

// RunContext executes the job over the given input partitions and
// returns the result. Execution is deterministic and byte-identical
// across the typed/boxed × k-way/concat-sort engine variants: map
// outputs are shuffled with a stable, map-task-ordered merge and sorted
// with the job's Compare (accelerated by the key code when present).
// When e.Dataflow is DataflowBoxed, the job runs on the boxed oracle
// engine through the boxing adapter in oracle.go instead.
//
// Cancellation is checked between tasks (once ctx is done, no further
// task or attempt starts) and periodically between records inside
// cancellable attempts; RunContext returns an error wrapping ctx.Err().
// The external dataflow removes its spill directory on every exit path,
// cancellation included.
//
// Fault tolerance: every task executes as a sequence of attempts under
// Engine.Retry — panics in user code are recovered into the attempt's
// error, transient failures retry with backoff, and stragglers can be
// speculatively re-executed. A run that fails despite retries returns
// an error wrapping a *TaskError. See DESIGN.md ("Fault tolerance").
func (j *Job[I, K, V, O]) RunContext(ctx context.Context, e *Engine, input [][]I) (*Result[I, O], error) {
	return j.run(ctx, e, input, nil)
}

// RunStream is RunContext with streamed output: each reduce task's
// emissions are handed to out when the task commits (serialized across
// tasks, emission order within a task) instead of being accumulated in
// Result.Output, so peak memory is O(largest task's output) — the
// commit protocol's price for never double-emitting under retries and
// speculation — rather than O(total output). A non-nil error from out
// fails the run. Metrics and side output are identical to RunContext.
func (j *Job[I, K, V, O]) RunStream(ctx context.Context, e *Engine, input [][]I, out func(O) error) (*Result[I, O], error) {
	if out == nil {
		return j.run(ctx, e, input, nil)
	}
	return j.run(ctx, e, input, &outputSink[O]{fn: out})
}

func (j *Job[I, K, V, O]) run(ctx context.Context, e *Engine, input [][]I, sink *outputSink[O]) (*Result[I, O], error) {
	m := len(input)
	if err := j.validate(m); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if e.Remote != nil {
		return j.runRemote(ctx, e, input, sink)
	}
	switch e.Dataflow {
	case DataflowBoxed:
		return j.runBoxed(ctx, e, input, sink)
	case DataflowExternal:
		return j.runExternal(ctx, e, input, sink)
	}
	r := j.NumReduceTasks

	res := &Result[I, O]{
		Metrics: Metrics{
			JobName:       j.Name,
			MapMetrics:    make([]TaskMetrics, m),
			ReduceMetrics: make([]TaskMetrics, r),
		},
		SideOutput: make([][]I, m),
	}
	st := newRunState(j)
	st.limiter = newSortLimiter(e.Parallelism)
	jobID := e.beginJob(j.Name)
	defer e.endJob(jobID)
	st.obs, st.jobID = e.Obs, jobID

	// ---- Map phase ----
	// mapOut[mapTask][reduceTask] holds the bucketed map output; the
	// buckets of one task are carved out of the single backing array in
	// mapFlat[mapTask], which is recycled once the reduce phase is done.
	// Both are published per task by the supervisor's commit step.
	mapOut := make([][][]Rec[K, V], m)
	mapFlat := make([][]Rec[K, V], m)
	st.mapPhase = typedMapPhase[I, K, V, O]{st: st, input: input, m: m, res: res, mapOut: mapOut, mapFlat: mapFlat}
	st.mapSup.init(e, MapTask, jobID, &st.mapPhase)
	mstats, merr := st.mapSup.supervise(ctx, m)
	res.addStats(mstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if merr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, merr)
	}
	for i := range res.MapMetrics {
		res.MapOutputRecords += res.MapMetrics[i].OutputRecords
	}

	// ---- Shuffle + merge + reduce phase ----
	// Output is buffered per attempt and drained to the sink (or the
	// collected Output) only at commit — the task-commit protocol.
	reduceOut := make([][]O, r)
	st.redPhase = typedReducePhase[I, K, V, O]{st: st, e: e, m: m, res: res, mapOut: mapOut, sink: sink, reduceOut: reduceOut}
	st.redSup.init(e, ReduceTask, jobID, &st.redPhase)
	rstats, rerr := st.redSup.supervise(ctx, r)
	res.addStats(rstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if rerr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, rerr)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: output sink: %w", j.Name, err)
		}
	}
	var total int
	for jj := range reduceOut {
		total += len(reduceOut[jj])
	}
	res.Output = make([]O, 0, total)
	for jj := range reduceOut {
		res.Output = append(res.Output, reduceOut[jj]...)
		putOutBuf(st.outPool, reduceOut[jj])
	}
	// The spill buckets are dead now that every reduce task has drained
	// them; recycle their backing arrays (putRecBuf clears the records,
	// so pooled buffers never pin keys or values).
	for _, flat := range mapFlat {
		st.pools.putRecBuf(flat)
	}
	return res, nil
}

// typedMapOut is one typed map attempt's private output, published
// atomically when the supervisor commits the attempt.
type typedMapOut[I, K, V any] struct {
	buckets [][]Rec[K, V]
	flat    []Rec[K, V]
	side    []I
	metrics TaskMetrics
}

// typedReduceOut is one typed reduce attempt's private output.
type typedReduceOut[O any] struct {
	out     []O
	metrics TaskMetrics
}

// typedMapPhase is the map phase's taskOps: run one map attempt,
// publish its buckets, side output, and metrics at commit.
type typedMapPhase[I, K, V, O any] struct {
	st      *runState[I, K, V, O]
	input   [][]I
	m       int
	res     *Result[I, O]
	mapOut  [][][]Rec[K, V]
	mapFlat [][]Rec[K, V]
}

func (p *typedMapPhase[I, K, V, O]) runTaskAttempt(actx context.Context, hook *taskHook, task, attempt int) (typedMapOut[I, K, V], error) {
	return p.st.runMapAttempt(actx, hook, task, p.m, p.input[task])
}

func (p *typedMapPhase[I, K, V, O]) commitTask(task int, out typedMapOut[I, K, V]) error {
	out.metrics.Kind = MapTask
	out.metrics.Index = task
	p.res.MapMetrics[task] = out.metrics
	p.res.SideOutput[task] = out.side
	p.mapOut[task], p.mapFlat[task] = out.buckets, out.flat
	return nil
}

func (p *typedMapPhase[I, K, V, O]) discardOut(out typedMapOut[I, K, V]) {
	p.st.pools.putRecBuf(out.flat)
}

// typedReducePhase is the reduce phase's taskOps. Output is buffered
// per attempt and drained to the sink (or the collected Output) only at
// commit — the task-commit protocol.
type typedReducePhase[I, K, V, O any] struct {
	st        *runState[I, K, V, O]
	e         *Engine
	m         int
	res       *Result[I, O]
	mapOut    [][][]Rec[K, V]
	sink      *outputSink[O]
	reduceOut [][]O
}

func (p *typedReducePhase[I, K, V, O]) runTaskAttempt(actx context.Context, hook *taskHook, task, attempt int) (typedReduceOut[O], error) {
	return p.st.runReduceAttempt(actx, hook, p.e, task, attempt, p.m, p.mapOut)
}

func (p *typedReducePhase[I, K, V, O]) commitTask(task int, out typedReduceOut[O]) error {
	out.metrics.Kind = ReduceTask
	out.metrics.Index = task
	p.res.ReduceMetrics[task] = out.metrics
	if p.sink != nil {
		p.sink.writeAll(out.out)
		putOutBuf(p.st.outPool, out.out)
		return nil
	}
	p.reduceOut[task] = out.out
	return nil
}

func (p *typedReducePhase[I, K, V, O]) discardOut(out typedReduceOut[O]) {
	putOutBuf(p.st.outPool, out.out)
}

// runState carries the per-run comparator/group fast paths and the
// process-wide pooled scratch buffers of the job's (K, V) types.
type runState[I, K, V, O any] struct {
	job    *Job[I, K, V, O]
	encode func(K) Code
	exact  bool
	gbits  int
	group  func(a, b K) int

	pools   *recPools[K, V]
	outPool *slicePool[O] // pooled []O reduce-output buffers

	// cmp is cmpRec bound once per run so the sort machinery receives a
	// stable func value instead of allocating a method closure per call.
	cmp func(a, b *Rec[K, V]) int
	// limiter bounds the extra goroutines all of this run's sorts may
	// spawn (nil = serial). Sized from Engine.Parallelism by run /
	// runExternal; other paths (boxed, remote) never sort Recs.
	limiter *sortLimiter

	// obs/jobID carry the run's observability identity into the attempt
	// runners (merge spans). nil/0 when observability is off — including
	// always on the worker side of remote execution, where tracing
	// happens at the dist layer instead.
	obs   *obs.Observer
	jobID uint32

	// Supervision state for the two phases, embedded so the fault-free
	// fast path allocates nothing per phase: &st.mapPhase converts to
	// taskOps without boxing, and the supervisors live in this one
	// allocation instead of one per phase.
	mapPhase typedMapPhase[I, K, V, O]
	mapSup   taskSupervisor[typedMapOut[I, K, V]]
	redPhase typedReducePhase[I, K, V, O]
	redSup   taskSupervisor[typedReduceOut[O]]
}

func newRunState[I, K, V, O any](j *Job[I, K, V, O]) *runState[I, K, V, O] {
	st := &runState[I, K, V, O]{
		job:     j,
		encode:  j.Coding.Encode,
		exact:   j.Coding.Exact,
		gbits:   j.Coding.GroupBits,
		group:   j.Group,
		pools:   poolFor[K, V](),
		outPool: outPoolFor[O](),
	}
	if st.group == nil {
		st.group = j.Compare
	}
	st.cmp = st.cmpRec
	return st
}

// cmpRec is the record comparator of the spill sort and the merge heap:
// binary codes first, the struct comparator only on code ties (never,
// for exact codings).
func (st *runState[I, K, V, O]) cmpRec(a, b *Rec[K, V]) int {
	if st.encode != nil {
		if c := a.code.Cmp(b.code); c != 0 {
			return c
		}
		if st.exact {
			return 0
		}
	}
	return st.job.Compare(a.Key, b.Key)
}

// sameGroup decides whether two (sort-adjacent) records belong to the
// same reduce call: by code prefix when the coding declares group bits,
// by the Group function otherwise.
func (st *runState[I, K, V, O]) sameGroup(a, b *Rec[K, V]) bool {
	if st.gbits > 0 {
		return a.code.prefixEqual(b.code, st.gbits)
	}
	return st.group(a.Key, b.Key) == 0
}

func (st *runState[I, K, V, O]) runMapAttempt(actx context.Context, hook *taskHook, idx, m int, input []I) (mout typedMapOut[I, K, V], err error) {
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return mout, err
	}
	j := st.job
	r := j.NumReduceTasks
	metrics := &mout.metrics
	ctx := &MapContext[I, K, V]{metrics: metrics, encode: st.encode, out: st.pools.getRecBuf(), sideCap: len(input), hook: hook}
	mapper := j.NewMapper()
	mapper.Configure(m, r, idx)
	// Attempt cancellation (a losing speculative attempt, a per-attempt
	// timeout) is observed between input records; the gate keeps
	// background-context runs free of per-record checks.
	check := actx.Done() != nil
	for i := range input {
		if check && i&cancelCheckMask == 0 && actx.Err() != nil {
			return mout, actx.Err()
		}
		metrics.InputRecords++
		mapper.Map(ctx, input[i])
	}
	out := ctx.out
	if j.NewCombiner != nil {
		combined, cerr := st.combine(idx, m, out, metrics, hook)
		if cerr != nil {
			return mout, cerr
		}
		st.pools.putRecBuf(out)
		out = combined
		// The combiner rewrote the task's output; fix the metric.
		metrics.OutputRecords = int64(len(out))
	}
	mout.side = ctx.side
	mout.buckets, mout.flat, err = st.partitionAndSort(out)
	return mout, err
}

// partitionAndSort buckets one map task's (possibly combined) output by
// partition and stable-sorts each bucket — the in-memory spill step.
// It takes ownership of out (the buffer is recycled); the returned flat
// backing array must be recycled by the caller once the reduce phase
// has drained the buckets.
func (st *runState[I, K, V, O]) partitionAndSort(out []Rec[K, V]) (buckets [][]Rec[K, V], flat []Rec[K, V], err error) {
	j := st.job
	r := j.NumReduceTasks
	// Bucket by partition: count first, then carve exact-size buckets
	// out of one flat allocation instead of growing r slices.
	parts := getInt32Buf(len(out))
	counts := getInt32Buf(r)
	for i := range counts {
		counts[i] = 0
	}
	for i := range out {
		p := j.Partition(out[i].Key, r)
		if p < 0 || p >= r {
			putInt32Buf(parts)
			putInt32Buf(counts)
			// A deterministic user-logic bug: re-running cannot fix it.
			return nil, nil, Fatal(fmt.Errorf("partition function returned %d for %d reduce tasks", p, r))
		}
		parts[i] = int32(p)
		counts[p]++
	}
	// The buckets' shared backing array comes from the record pool (a
	// previous run's spill array, recycled at the end of Run).
	flat = st.pools.getRecBuf()
	if cap(flat) < len(out) {
		flat = make([]Rec[K, V], len(out))
	}
	flat = flat[:len(out)]
	// Turn counts into running write offsets (counts[p] ends up holding
	// the bucket's end offset).
	next := int32(0)
	for p := 0; p < r; p++ {
		c := counts[p]
		counts[p] = next
		next += c
	}
	for i := range out {
		p := parts[i]
		flat[counts[p]] = out[i]
		counts[p]++
	}
	buckets = make([][]Rec[K, V], r)
	start := int32(0)
	for p := 0; p < r; p++ {
		end := counts[p]
		buckets[p] = flat[start:end:end]
		start = end
	}
	putInt32Buf(parts)
	putInt32Buf(counts)
	st.pools.putRecBuf(out)
	// Sort each bucket now (stable) so the reduce-side k-way merge only
	// has to interleave pre-sorted runs — the Hadoop spill-file model.
	// Buckets spread across the run's free sort workers.
	st.sortBuckets(buckets)
	return buckets, flat, nil
}

// combine runs the job's combiner over one map task's output, grouped
// exactly like the reduce side would group it.
func (st *runState[I, K, V, O]) combine(idx, m int, out []Rec[K, V], metrics *TaskMetrics, hook *taskHook) ([]Rec[K, V], error) {
	st.sortRecsStable(out)
	combiner := st.job.NewCombiner()
	combiner.Configure(m, st.job.NumReduceTasks, idx)
	cctx := &MapContext[I, K, V]{metrics: metrics, encode: st.encode, out: st.pools.getRecBuf(), hook: hook}
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && st.sameGroup(&out[lo], &out[hi]) {
			hi++
		}
		combiner.Combine(cctx, out[lo].Key, out[lo:hi])
		lo = hi
	}
	return cctx.out, nil
}

func (st *runState[I, K, V, O]) runReduceAttempt(actx context.Context, hook *taskHook, e *Engine, idx, attempt, m int, mapOut [][][]Rec[K, V]) (rout typedReduceOut[O], err error) {
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return rout, err
	}
	j := st.job
	metrics := &rout.metrics
	ctx := &ReduceContext[O]{metrics: metrics, out: getOutBuf[O](st.outPool), hook: hook}
	reducer := j.NewReducer()
	reducer.Configure(m, j.NumReduceTasks, idx)

	if e.Shuffle == ShuffleConcatSort {
		// Reference path: concatenate the buckets in map-task order and
		// stable-sort the whole input (the pre-sorted buckets make this
		// redundant work — that is the point of the oracle).
		var input []Rec[K, V]
		for mi := 0; mi < m; mi++ {
			input = append(input, mapOut[mi][idx]...)
		}
		st.sortRecsStable(input)
		metrics.InputRecords = int64(len(input))
		st.reduceSortedRun(ctx, reducer, input)
		rout.out = ctx.out
		return rout, nil
	}

	// Streaming k-way merge of the pre-sorted spill buckets. Equal keys
	// are popped in map-task order (heap ties break on bucket index),
	// reproducing the concat+stable-sort order exactly.
	if err := hook.fire(FaultMerge); err != nil {
		return rout, err
	}
	runs := st.pools.getRunsBuf(m)
	total := 0
	for mi := 0; mi < m; mi++ {
		if b := mapOut[mi][idx]; len(b) > 0 {
			runs = append(runs, b)
			total += len(b)
		}
	}
	metrics.InputRecords = int64(total)
	if st.obs != nil {
		st.recordMerge(obs.EvBegin, obs.PhaseReduce, idx, attempt, int64(total))
		defer st.recordMerge(obs.EvEnd, obs.PhaseReduce, idx, attempt, int64(total))
	}
	check := actx.Done() != nil
	switch len(runs) {
	case 0:
	case 1:
		// Single non-empty bucket: it is the task's sorted input; pass
		// group subslices straight through, no copying at all.
		st.reduceSortedRun(ctx, reducer, runs[0])
	default:
		mg := newRecMerger(st, runs)
		group := st.pools.getRecBuf()
		rec, _ := mg.next()
		group = append(group, rec)
		for n := 0; ; n++ {
			if check && n&cancelCheckMask == 0 && actx.Err() != nil {
				return rout, actx.Err()
			}
			rec, ok := mg.next()
			if !ok {
				break
			}
			if !st.sameGroup(&group[0], &rec) {
				st.emitGroup(ctx, reducer, group)
				group = group[:0]
			}
			group = append(group, rec)
		}
		st.emitGroup(ctx, reducer, group)
		st.pools.putRecBuf(group)
	}
	st.pools.putRunsBuf(runs)
	rout.out = ctx.out
	return rout, nil
}

// recordMerge emits a merge-span event carrying the run's job identity.
// Callers guard on st.obs.
func (st *runState[I, K, V, O]) recordMerge(typ obs.EventType, phase uint8, task, attempt int, arg int64) {
	st.obs.Tracer.Record(obs.Event{
		Type: typ, Kind: obs.KMerge, Phase: phase, Job: st.jobID,
		Task: int32(task), Attempt: int32(attempt), Arg: arg,
	})
}

// reduceSortedRun walks one fully sorted input run and invokes the
// reducer once per key group, updating the group metrics.
func (st *runState[I, K, V, O]) reduceSortedRun(ctx *ReduceContext[O], reducer Reducer[K, V, O], input []Rec[K, V]) {
	for lo := 0; lo < len(input); {
		hi := lo + 1
		for hi < len(input) && st.sameGroup(&input[lo], &input[hi]) {
			hi++
		}
		st.emitGroup(ctx, reducer, input[lo:hi])
		lo = hi
	}
}

// emitGroup invokes the reducer for one key group and maintains the
// group metrics.
func (st *runState[I, K, V, O]) emitGroup(ctx *ReduceContext[O], reducer Reducer[K, V, O], group []Rec[K, V]) {
	ctx.metrics.InputGroups++
	if g := int64(len(group)); g > ctx.metrics.MaxGroupRecords {
		ctx.metrics.MaxGroupRecords = g
	}
	reducer.Reduce(ctx, group[0].Key, group)
}
