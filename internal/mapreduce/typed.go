package mapreduce

import (
	"context"
	"fmt"
	"sync"
)

// This file is the typed engine: the generic, boxing-free realization of
// the execution model described in the package comment. A Job[I, K, V, O]
// fixes four concrete types —
//
//	I – one map-input record (and, by convention, one side-output
//	    record: SideEmit writes records of the input type so a
//	    pipeline's next job can consume SideOutput as its input),
//	K – the intermediate (shuffle) key,
//	V – the intermediate value,
//	O – one reduce-output record —
//
// so map output, spill buckets, the map-side stable sort, the k-way
// merge heap, and reduce group buffers all hold concrete types with zero
// per-record interface boxing. An optional KeyCoding[K] additionally
// turns most sort/merge/group comparisons into one or two uint64
// compares (see keycode.go).

// Pair is a plain typed key-value record. It is the input/output record
// shape used throughout the pipeline (e.g. blocking-key-annotated
// entities, emitted match pairs).
type Pair[K, V any] struct {
	Key   K
	Value V
}

// Rec is one intermediate record in flight between a map task and a
// reduce task: the key/value pair plus the engine-internal binary key
// code (zero when the job has no KeyCoding). Reducers receive group
// value lists as []Rec and should read Key/Value only.
type Rec[K, V any] struct {
	code  Code
	Key   K
	Value V
}

// Mapper is the typed counterpart of BoxedMapper, instantiated once per
// map task. Configure receives the task's partition index before any Map
// call, mirroring Hadoop's Mapper.configure.
type Mapper[I, K, V any] interface {
	Configure(m, r, partitionIndex int)
	Map(ctx *MapContext[I, K, V], rec I)
}

// Reducer is the typed counterpart of BoxedReducer, instantiated once
// per reduce task. Reduce is called once per key group with the group's
// first key and all values in merged order. The values slice is only
// valid for the duration of the call: the engine streams groups out of
// the shuffle merge through a reused buffer. Implementations that need
// values beyond the call must copy them.
type Reducer[K, V, O any] interface {
	Configure(m, r, taskIndex int)
	Reduce(ctx *ReduceContext[O], key K, values []Rec[K, V])
}

// Combiner runs over each map task's output before the shuffle, grouped
// with the same Group/Compare as the reduce side, re-emitting
// intermediate (K, V) pairs — the standard Hadoop combiner optimization.
type Combiner[I, K, V any] interface {
	Configure(m, r, taskIndex int)
	Combine(ctx *MapContext[I, K, V], key K, values []Rec[K, V])
}

// Job describes one typed MapReduce job. NewMapper/NewReducer are
// factories so that concurrently executing tasks never share mutable
// state.
type Job[I, K, V, O any] struct {
	Name string

	// NumReduceTasks is r. The number of map tasks m always equals the
	// number of input partitions passed to Run.
	NumReduceTasks int

	NewMapper  func() Mapper[I, K, V]
	NewReducer func() Reducer[K, V, O]

	// Partition implements part: key -> reduce task in [0,r).
	Partition func(key K, numReduceTasks int) int
	// Compare implements comp: total order on keys (-1, 0, +1).
	Compare func(a, b K) int
	// Group implements group: keys a and b belong to the same reduce
	// call iff Group(a,b) == 0. It must be compatible with Compare
	// (groups are runs of the sorted order). When nil, Compare is used.
	Group func(a, b K) int

	// NewCombiner, when non-nil, enables the map-side combiner.
	NewCombiner func() Combiner[I, K, V]

	// Coding is the optional order-preserving binary key code (see
	// keycode.go). The zero value disables the fast path.
	Coding KeyCoding[K]
}

// JobName returns the job's name (JobRunner).
func (j *Job[I, K, V, O]) JobName() string { return j.Name }

// JobRunner is the type-erased face of a Job: it hides the intermediate
// K and V types so heterogeneous jobs that share input and output record
// types (e.g. the five redistribution strategies) can stand behind one
// interface.
//
// RunContext is the primary entry point; Run is the pre-context adapter
// (kept for one release of compatibility) and RunStream additionally
// streams reduce output to a callback instead of accumulating it in
// Result.Output — the constant-memory output path.
type JobRunner[I, O any] interface {
	Run(e *Engine, input [][]I) (*Result[I, O], error)
	RunContext(ctx context.Context, e *Engine, input [][]I) (*Result[I, O], error)
	RunStream(ctx context.Context, e *Engine, input [][]I, out func(O) error) (*Result[I, O], error)
	JobName() string
}

// outputSink serializes streamed reduce output across concurrently
// executing reduce tasks: records are handed to fn under a mutex, in
// emission order within one reduce task (the order across tasks is the
// tasks' completion interleaving — deterministic only at Parallelism 1).
// The first callback error is sticky: later writes become no-ops and the
// run fails with it after the reduce phase.
type outputSink[O any] struct {
	mu  sync.Mutex
	fn  func(O) error
	err error
}

func (s *outputSink[O]) write(rec O) {
	s.mu.Lock()
	if s.err == nil {
		s.err = s.fn(rec)
	}
	s.mu.Unlock()
}

// Err returns the sticky first write error, if any.
func (s *outputSink[O]) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Result is the outcome of a typed job execution.
type Result[I, O any] struct {
	Metrics
	// Output contains the concatenated reduce outputs in reduce task
	// order (within a task, in emission order).
	Output []O
	// SideOutput holds each map task's side output, indexed by map task
	// (= input partition) index. Side records have the input type I so a
	// follow-up job can consume them as its partitioned input.
	SideOutput [][]I
}

// MapContext is passed to map (and combine) calls for emitting
// intermediate output and updating counters. It is owned by a single
// task; methods are not safe for concurrent use by multiple goroutines.
type MapContext[I, K, V any] struct {
	metrics *TaskMetrics
	out     []Rec[K, V]
	side    []I
	// sideCap sizes the side-output buffer on first use: side emitters
	// (the BDM job) write at most one record per input record, so the
	// task's input size is an exact upper bound and the buffer never
	// regrows.
	sideCap int
	encode  func(K) Code
	// boxed, when non-nil, redirects all emissions and counters through
	// the boxed oracle context (see oracle.go).
	boxed *BoxedContext
	// spill, when non-nil, redirects emissions into the external
	// dataflow's spiller instead of the in-memory out buffer (see
	// external.go).
	spill *extSpiller[K, V]
}

// Emit appends an intermediate key-value pair to the task's output,
// computing the key's binary code once if the job has a KeyCoding.
func (c *MapContext[I, K, V]) Emit(key K, value V) {
	if c.boxed != nil {
		c.boxed.Emit(key, value)
		return
	}
	var code Code
	if c.encode != nil {
		code = c.encode(key)
	}
	if c.spill != nil {
		c.spill.add(Rec[K, V]{code: code, Key: key, Value: value})
		c.metrics.OutputRecords++
		return
	}
	c.out = append(c.out, Rec[K, V]{code: code, Key: key, Value: value})
	c.metrics.OutputRecords++
}

// SideEmit writes a record of the input type to the task's side output,
// bypassing the shuffle. The BDM job uses it for the "additionalOutput"
// of Algorithm 3: blocking-key-annotated entities, written per map task
// so the second job sees the identical input partitioning.
func (c *MapContext[I, K, V]) SideEmit(rec I) {
	if c.boxed != nil {
		c.boxed.SideEmit(rec, nil)
		return
	}
	if c.side == nil && c.sideCap > 0 {
		c.side = make([]I, 0, c.sideCap)
	}
	c.side = append(c.side, rec)
	c.metrics.SideOutputRecords++
}

// Inc adds delta to the named user counter for this task.
// ComparisonsCounter takes an allocation-free fast path.
func (c *MapContext[I, K, V]) Inc(name string, delta int64) {
	if c.boxed != nil {
		c.boxed.Inc(name, delta)
		return
	}
	incCounter(c.metrics, name, delta)
}

// ReduceContext is passed to reduce calls for emitting output records
// and updating counters.
type ReduceContext[O any] struct {
	metrics *TaskMetrics
	out     []O
	boxed   *BoxedContext
	// sink, when non-nil, receives every emitted record instead of the
	// out buffer (RunStream) — output is never accumulated in memory.
	sink *outputSink[O]
}

// Emit appends one record to the job output (or streams it to the run's
// output sink under RunStream).
func (c *ReduceContext[O]) Emit(rec O) {
	if c.boxed != nil {
		c.boxed.Emit(rec, nil)
		return
	}
	if c.sink != nil {
		c.sink.write(rec)
		c.metrics.OutputRecords++
		return
	}
	c.out = append(c.out, rec)
	c.metrics.OutputRecords++
}

// Inc adds delta to the named user counter for this task.
func (c *ReduceContext[O]) Inc(name string, delta int64) {
	if c.boxed != nil {
		c.boxed.Inc(name, delta)
		return
	}
	incCounter(c.metrics, name, delta)
}

// incCounter is the shared counter-update path (mirrors BoxedContext.Inc).
func incCounter(metrics *TaskMetrics, name string, delta int64) {
	if name == ComparisonsCounter {
		metrics.Comparisons += delta
		return
	}
	m := metrics.Counters
	if m == nil {
		// Engine-created contexts initialize the map once per task; this
		// guard only fires for contexts constructed directly in tests.
		m = make(map[string]int64)
		metrics.Counters = m
	}
	m[name] += delta
}

// MapperFunc adapts plain functions to the Mapper interface.
type MapperFunc[I, K, V any] struct {
	OnConfigure func(m, r, partitionIndex int)
	OnMap       func(ctx *MapContext[I, K, V], rec I)
}

// Configure implements Mapper.
func (f *MapperFunc[I, K, V]) Configure(m, r, partitionIndex int) {
	if f.OnConfigure != nil {
		f.OnConfigure(m, r, partitionIndex)
	}
}

// Map implements Mapper.
func (f *MapperFunc[I, K, V]) Map(ctx *MapContext[I, K, V], rec I) { f.OnMap(ctx, rec) }

// ReducerFunc adapts plain functions to the Reducer interface.
type ReducerFunc[K, V, O any] struct {
	OnConfigure func(m, r, taskIndex int)
	OnReduce    func(ctx *ReduceContext[O], key K, values []Rec[K, V])
}

// Configure implements Reducer.
func (f *ReducerFunc[K, V, O]) Configure(m, r, taskIndex int) {
	if f.OnConfigure != nil {
		f.OnConfigure(m, r, taskIndex)
	}
}

// Reduce implements Reducer.
func (f *ReducerFunc[K, V, O]) Reduce(ctx *ReduceContext[O], key K, values []Rec[K, V]) {
	f.OnReduce(ctx, key, values)
}

func (j *Job[I, K, V, O]) validate(numPartitions int) error {
	switch {
	case j.NumReduceTasks <= 0:
		return fmt.Errorf("mapreduce: job %q: NumReduceTasks must be > 0, got %d", j.Name, j.NumReduceTasks)
	case numPartitions <= 0:
		return fmt.Errorf("mapreduce: job %q: need at least one input partition", j.Name)
	case j.NewMapper == nil:
		return fmt.Errorf("mapreduce: job %q: NewMapper is required", j.Name)
	case j.NewReducer == nil:
		return fmt.Errorf("mapreduce: job %q: NewReducer is required", j.Name)
	case j.Partition == nil:
		return fmt.Errorf("mapreduce: job %q: Partition function is required", j.Name)
	case j.Compare == nil:
		return fmt.Errorf("mapreduce: job %q: Compare function is required", j.Name)
	case j.Coding.Encode == nil && (j.Coding.Exact || j.Coding.GroupBits != 0):
		return fmt.Errorf("mapreduce: job %q: KeyCoding.Exact/GroupBits require an Encode function", j.Name)
	case j.Coding.GroupBits < 0 || j.Coding.GroupBits > 128:
		return fmt.Errorf("mapreduce: job %q: KeyCoding.GroupBits must be in [0,128], got %d", j.Name, j.Coding.GroupBits)
	}
	return nil
}

// Run executes the job over the given input partitions and returns the
// result — the pre-context adapter over RunContext, kept for one release
// of compatibility.
func (j *Job[I, K, V, O]) Run(e *Engine, input [][]I) (*Result[I, O], error) {
	return j.RunContext(context.Background(), e, input)
}

// RunContext executes the job over the given input partitions and
// returns the result. Execution is deterministic and byte-identical
// across the typed/boxed × k-way/concat-sort engine variants: map
// outputs are shuffled with a stable, map-task-ordered merge and sorted
// with the job's Compare (accelerated by the key code when present).
// When e.Dataflow is DataflowBoxed, the job runs on the boxed oracle
// engine through the boxing adapter in oracle.go instead.
//
// Cancellation is checked between tasks: once ctx is done, no further
// map or reduce task starts, in-flight tasks finish, and RunContext
// returns an error wrapping ctx.Err(). The external dataflow removes
// its spill directory on every exit path, cancellation included.
func (j *Job[I, K, V, O]) RunContext(ctx context.Context, e *Engine, input [][]I) (*Result[I, O], error) {
	return j.run(ctx, e, input, nil)
}

// RunStream is RunContext with streamed output: every reduce emission is
// handed to out (serialized across tasks, emission order within a task)
// instead of being accumulated, so Result.Output stays empty and peak
// memory is independent of the output size. A non-nil error from out
// fails the run. Metrics and side output are identical to RunContext.
func (j *Job[I, K, V, O]) RunStream(ctx context.Context, e *Engine, input [][]I, out func(O) error) (*Result[I, O], error) {
	if out == nil {
		return j.run(ctx, e, input, nil)
	}
	return j.run(ctx, e, input, &outputSink[O]{fn: out})
}

func (j *Job[I, K, V, O]) run(ctx context.Context, e *Engine, input [][]I, sink *outputSink[O]) (*Result[I, O], error) {
	m := len(input)
	if err := j.validate(m); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	switch e.Dataflow {
	case DataflowBoxed:
		return j.runBoxed(ctx, e, input, sink)
	case DataflowExternal:
		return j.runExternal(ctx, e, input, sink)
	}
	r := j.NumReduceTasks

	res := &Result[I, O]{
		Metrics: Metrics{
			JobName:       j.Name,
			MapMetrics:    make([]TaskMetrics, m),
			ReduceMetrics: make([]TaskMetrics, r),
		},
		SideOutput: make([][]I, m),
	}
	st := newRunState(j)

	// ---- Map phase ----
	// mapOut[mapTask][reduceTask] holds the bucketed map output; the
	// buckets of one task are carved out of the single backing array in
	// mapFlat[mapTask], which is recycled once the reduce phase is done.
	mapOut := make([][][]Rec[K, V], m)
	mapFlat := make([][]Rec[K, V], m)
	mapErr := make([]error, m)
	e.forEachTask(ctx, m, func(i int) {
		mapOut[i], mapFlat[i], mapErr[i] = st.runMapTask(i, m, input[i], res)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	for i, err := range mapErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: map task %d: %w", j.Name, i, err)
		}
	}
	for i := range res.MapMetrics {
		res.MapMetrics[i].Kind = MapTask
		res.MapMetrics[i].Index = i
		res.MapOutputRecords += res.MapMetrics[i].OutputRecords
	}

	// ---- Shuffle + merge + reduce phase ----
	reduceOut := make([][]O, r)
	reduceErr := make([]error, r)
	e.forEachTask(ctx, r, func(jj int) {
		reduceOut[jj], reduceErr[jj] = st.runReduceTask(e, jj, m, mapOut, res, sink)
	})
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	for jj, err := range reduceErr {
		if err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: reduce task %d: %w", j.Name, jj, err)
		}
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: output sink: %w", j.Name, err)
		}
	}
	var total int
	for jj := range reduceOut {
		total += len(reduceOut[jj])
	}
	res.Output = make([]O, 0, total)
	for jj := range res.ReduceMetrics {
		res.ReduceMetrics[jj].Kind = ReduceTask
		res.ReduceMetrics[jj].Index = jj
		res.Output = append(res.Output, reduceOut[jj]...)
		putOutBuf(st.outPool, reduceOut[jj])
	}
	// The spill buckets are dead now that every reduce task has drained
	// them; recycle their backing arrays (putRecBuf clears the records,
	// so pooled buffers never pin keys or values).
	for _, flat := range mapFlat {
		st.pools.putRecBuf(flat)
	}
	return res, nil
}

// runState carries the per-run comparator/group fast paths and the
// process-wide pooled scratch buffers of the job's (K, V) types.
type runState[I, K, V, O any] struct {
	job    *Job[I, K, V, O]
	encode func(K) Code
	exact  bool
	gbits  int
	group  func(a, b K) int

	pools   *recPools[K, V]
	outPool *sync.Pool // pooled []O reduce-output buffers
}

func newRunState[I, K, V, O any](j *Job[I, K, V, O]) *runState[I, K, V, O] {
	st := &runState[I, K, V, O]{
		job:     j,
		encode:  j.Coding.Encode,
		exact:   j.Coding.Exact,
		gbits:   j.Coding.GroupBits,
		group:   j.Group,
		pools:   poolFor[K, V](),
		outPool: outPoolFor[O](),
	}
	if st.group == nil {
		st.group = j.Compare
	}
	return st
}

// cmpRec is the record comparator of the spill sort and the merge heap:
// binary codes first, the struct comparator only on code ties (never,
// for exact codings).
func (st *runState[I, K, V, O]) cmpRec(a, b *Rec[K, V]) int {
	if st.encode != nil {
		if c := a.code.Cmp(b.code); c != 0 {
			return c
		}
		if st.exact {
			return 0
		}
	}
	return st.job.Compare(a.Key, b.Key)
}

// sameGroup decides whether two (sort-adjacent) records belong to the
// same reduce call: by code prefix when the coding declares group bits,
// by the Group function otherwise.
func (st *runState[I, K, V, O]) sameGroup(a, b *Rec[K, V]) bool {
	if st.gbits > 0 {
		return a.code.prefixEqual(b.code, st.gbits)
	}
	return st.group(a.Key, b.Key) == 0
}

func (st *runState[I, K, V, O]) runMapTask(idx, m int, input []I, res *Result[I, O]) (buckets [][]Rec[K, V], flat []Rec[K, V], err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	j := st.job
	r := j.NumReduceTasks
	metrics := &res.MapMetrics[idx]
	if metrics.Counters == nil {
		metrics.Counters = make(map[string]int64)
	}
	ctx := &MapContext[I, K, V]{metrics: metrics, encode: st.encode, out: st.pools.getRecBuf(), sideCap: len(input)}
	mapper := j.NewMapper()
	mapper.Configure(m, r, idx)
	for i := range input {
		metrics.InputRecords++
		mapper.Map(ctx, input[i])
	}
	out := ctx.out
	if j.NewCombiner != nil {
		combined, cerr := st.combine(idx, m, out, metrics)
		if cerr != nil {
			return nil, nil, cerr
		}
		st.pools.putRecBuf(out)
		out = combined
		// The combiner rewrote the task's output; fix the metric.
		metrics.OutputRecords = int64(len(out))
	}
	res.SideOutput[idx] = ctx.side
	return st.partitionAndSort(out)
}

// partitionAndSort buckets one map task's (possibly combined) output by
// partition and stable-sorts each bucket — the in-memory spill step.
// It takes ownership of out (the buffer is recycled); the returned flat
// backing array must be recycled by the caller once the reduce phase
// has drained the buckets.
func (st *runState[I, K, V, O]) partitionAndSort(out []Rec[K, V]) (buckets [][]Rec[K, V], flat []Rec[K, V], err error) {
	j := st.job
	r := j.NumReduceTasks
	// Bucket by partition: count first, then carve exact-size buckets
	// out of one flat allocation instead of growing r slices.
	parts := getInt32Buf(len(out))
	counts := getInt32Buf(r)
	for i := range counts {
		counts[i] = 0
	}
	for i := range out {
		p := j.Partition(out[i].Key, r)
		if p < 0 || p >= r {
			putInt32Buf(parts)
			putInt32Buf(counts)
			return nil, nil, fmt.Errorf("partition function returned %d for %d reduce tasks", p, r)
		}
		parts[i] = int32(p)
		counts[p]++
	}
	// The buckets' shared backing array comes from the record pool (a
	// previous run's spill array, recycled at the end of Run).
	flat = st.pools.getRecBuf()
	if cap(flat) < len(out) {
		flat = make([]Rec[K, V], len(out))
	}
	flat = flat[:len(out)]
	// Turn counts into running write offsets (counts[p] ends up holding
	// the bucket's end offset).
	next := int32(0)
	for p := 0; p < r; p++ {
		c := counts[p]
		counts[p] = next
		next += c
	}
	for i := range out {
		p := parts[i]
		flat[counts[p]] = out[i]
		counts[p]++
	}
	buckets = make([][]Rec[K, V], r)
	start := int32(0)
	for p := 0; p < r; p++ {
		end := counts[p]
		buckets[p] = flat[start:end:end]
		start = end
	}
	putInt32Buf(parts)
	putInt32Buf(counts)
	st.pools.putRecBuf(out)
	// Sort each bucket now (stable) so the reduce-side k-way merge only
	// has to interleave pre-sorted runs — the Hadoop spill-file model.
	for _, b := range buckets {
		st.sortRecsStable(b)
	}
	return buckets, flat, nil
}

// combine runs the job's combiner over one map task's output, grouped
// exactly like the reduce side would group it.
func (st *runState[I, K, V, O]) combine(idx, m int, out []Rec[K, V], metrics *TaskMetrics) ([]Rec[K, V], error) {
	st.sortRecsStable(out)
	combiner := st.job.NewCombiner()
	combiner.Configure(m, st.job.NumReduceTasks, idx)
	cctx := &MapContext[I, K, V]{metrics: metrics, encode: st.encode, out: st.pools.getRecBuf()}
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && st.sameGroup(&out[lo], &out[hi]) {
			hi++
		}
		combiner.Combine(cctx, out[lo].Key, out[lo:hi])
		lo = hi
	}
	return cctx.out, nil
}

func (st *runState[I, K, V, O]) runReduceTask(e *Engine, idx, m int, mapOut [][][]Rec[K, V], res *Result[I, O], sink *outputSink[O]) (out []O, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	j := st.job
	metrics := &res.ReduceMetrics[idx]
	if metrics.Counters == nil {
		metrics.Counters = make(map[string]int64)
	}
	ctx := &ReduceContext[O]{metrics: metrics, sink: sink}
	if sink == nil {
		ctx.out = getOutBuf[O](st.outPool)
	}
	reducer := j.NewReducer()
	reducer.Configure(m, j.NumReduceTasks, idx)

	if e.Shuffle == ShuffleConcatSort {
		// Reference path: concatenate the buckets in map-task order and
		// stable-sort the whole input (the pre-sorted buckets make this
		// redundant work — that is the point of the oracle).
		var input []Rec[K, V]
		for mi := 0; mi < m; mi++ {
			input = append(input, mapOut[mi][idx]...)
		}
		st.sortRecsStable(input)
		metrics.InputRecords = int64(len(input))
		st.reduceSortedRun(ctx, reducer, input)
		return ctx.out, nil
	}

	// Streaming k-way merge of the pre-sorted spill buckets. Equal keys
	// are popped in map-task order (heap ties break on bucket index),
	// reproducing the concat+stable-sort order exactly.
	runs := st.pools.getRunsBuf(m)
	total := 0
	for mi := 0; mi < m; mi++ {
		if b := mapOut[mi][idx]; len(b) > 0 {
			runs = append(runs, b)
			total += len(b)
		}
	}
	metrics.InputRecords = int64(total)
	switch len(runs) {
	case 0:
	case 1:
		// Single non-empty bucket: it is the task's sorted input; pass
		// group subslices straight through, no copying at all.
		st.reduceSortedRun(ctx, reducer, runs[0])
	default:
		mg := newRecMerger(st, runs)
		group := st.pools.getRecBuf()
		rec, _ := mg.next()
		group = append(group, rec)
		for {
			rec, ok := mg.next()
			if !ok {
				break
			}
			if !st.sameGroup(&group[0], &rec) {
				st.emitGroup(ctx, reducer, group)
				group = group[:0]
			}
			group = append(group, rec)
		}
		st.emitGroup(ctx, reducer, group)
		st.pools.putRecBuf(group)
	}
	st.pools.putRunsBuf(runs)
	return ctx.out, nil
}

// reduceSortedRun walks one fully sorted input run and invokes the
// reducer once per key group, updating the group metrics.
func (st *runState[I, K, V, O]) reduceSortedRun(ctx *ReduceContext[O], reducer Reducer[K, V, O], input []Rec[K, V]) {
	for lo := 0; lo < len(input); {
		hi := lo + 1
		for hi < len(input) && st.sameGroup(&input[lo], &input[hi]) {
			hi++
		}
		st.emitGroup(ctx, reducer, input[lo:hi])
		lo = hi
	}
}

// emitGroup invokes the reducer for one key group and maintains the
// group metrics.
func (st *runState[I, K, V, O]) emitGroup(ctx *ReduceContext[O], reducer Reducer[K, V, O], group []Rec[K, V]) {
	ctx.metrics.InputGroups++
	if g := int64(len(group)); g > ctx.metrics.MaxGroupRecords {
		ctx.metrics.MaxGroupRecords = g
	}
	reducer.Reduce(ctx, group[0].Key, group)
}
