package mapreduce

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// wordCountJob is the canonical MR smoke test.
func wordCountJob(r int, combiner bool) *BoxedJob {
	j := &BoxedJob{
		Name:           "wordcount",
		NumReduceTasks: r,
		NewMapper: func() BoxedMapper {
			return &FuncMapper{
				OnMap: func(ctx *BoxedContext, kv KeyValue) {
					for _, w := range strings.Fields(kv.Value.(string)) {
						ctx.Emit(w, 1)
					}
				},
			}
		},
		NewReducer: func() BoxedReducer {
			return &FuncReducer{
				OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
					sum := 0
					for _, v := range values {
						sum += v.Value.(int)
					}
					ctx.Emit(key, sum)
				},
			}
		},
		Partition: func(key any, r int) int { return HashPartition(key.(string), r) },
		Compare:   CompareStrings,
	}
	if combiner {
		j.NewCombiner = j.NewReducer
	}
	return j
}

func lines(ls ...string) []KeyValue {
	kvs := make([]KeyValue, len(ls))
	for i, l := range ls {
		kvs[i] = KeyValue{Value: l}
	}
	return kvs
}

func countsOf(res *BoxedResult) map[string]int {
	out := make(map[string]int)
	for _, kv := range res.Output {
		out[kv.Key.(string)] = kv.Value.(int)
	}
	return out
}

func TestWordCount(t *testing.T) {
	for _, combiner := range []bool{false, true} {
		for _, r := range []int{1, 2, 7} {
			res, err := (&Engine{}).Run(wordCountJob(r, combiner), [][]KeyValue{
				lines("a b a", "c"),
				lines("b a", "c c c"),
			})
			if err != nil {
				t.Fatalf("r=%d combiner=%v: %v", r, combiner, err)
			}
			want := map[string]int{"a": 3, "b": 2, "c": 4}
			if got := countsOf(res); !reflect.DeepEqual(got, want) {
				t.Errorf("r=%d combiner=%v: counts = %v, want %v", r, combiner, got, want)
			}
		}
	}
}

func TestCombinerReducesMapOutput(t *testing.T) {
	input := [][]KeyValue{lines("a a a a b", "a b"), lines("b b")}
	plain, err := (&Engine{}).Run(wordCountJob(3, false), input)
	if err != nil {
		t.Fatal(err)
	}
	combined, err := (&Engine{}).Run(wordCountJob(3, true), input)
	if err != nil {
		t.Fatal(err)
	}
	if plain.MapOutputRecords != 9 {
		t.Errorf("plain map output = %d, want 9", plain.MapOutputRecords)
	}
	// Map task 0 emits {a,b}, map task 1 emits {b}: 3 combined records.
	if combined.MapOutputRecords != 3 {
		t.Errorf("combined map output = %d, want 3", combined.MapOutputRecords)
	}
	if !reflect.DeepEqual(countsOf(plain), countsOf(combined)) {
		t.Error("combiner changed the result")
	}
}

// TestStableMergeOrder verifies the Hadoop-like property BlockSplit
// depends on: within one key group, values arrive in map-task order.
func TestStableMergeOrder(t *testing.T) {
	job := &BoxedJob{
		Name:           "order",
		NumReduceTasks: 1,
		NewMapper: func() BoxedMapper {
			return &FuncMapper{
				OnMap: func(ctx *BoxedContext, kv KeyValue) {
					ctx.Emit("k", kv.Value)
				},
			}
		},
		NewReducer: func() BoxedReducer {
			return &FuncReducer{
				OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
					for _, v := range values {
						ctx.Emit(key, v.Value)
					}
				},
			}
		},
		Partition: func(any, int) int { return 0 },
		Compare:   CompareStrings,
	}
	// Run several times: with parallel map tasks the merge order must
	// still be deterministic (map task 0's values first).
	for trial := 0; trial < 10; trial++ {
		res, err := (&Engine{Parallelism: 4}).Run(job, [][]KeyValue{
			{{Value: "m0-a"}, {Value: "m0-b"}},
			{{Value: "m1-a"}},
			{{Value: "m2-a"}, {Value: "m2-b"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, kv := range res.Output {
			got = append(got, kv.Value.(string))
		}
		want := []string{"m0-a", "m0-b", "m1-a", "m2-a", "m2-b"}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: value order = %v, want %v", trial, got, want)
		}
	}
}

// TestCompositeKeyGrouping mirrors the Figure 1 example: partition on
// part of the key, group on the entire key.
func TestCompositeKeyGrouping(t *testing.T) {
	type ck struct {
		color string
		shape string
	}
	job := &BoxedJob{
		Name:           "figure1",
		NumReduceTasks: 3,
		NewMapper: func() BoxedMapper {
			return &FuncMapper{
				OnMap: func(ctx *BoxedContext, kv KeyValue) {
					k := kv.Key.(ck)
					ctx.Emit(k, 1)
				},
			}
		},
		NewReducer: func() BoxedReducer {
			return &FuncReducer{
				OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
					ctx.Emit(key, len(values))
				},
			}
		},
		Partition: func(key any, r int) int { return HashPartition(key.(ck).color, r) },
		Compare: func(a, b any) int {
			ka, kb := a.(ck), b.(ck)
			if c := CompareStrings(ka.color, kb.color); c != 0 {
				return c
			}
			return CompareStrings(ka.shape, kb.shape)
		},
	}
	input := [][]KeyValue{{
		{Key: ck{"gray", "circle"}}, {Key: ck{"gray", "triangle"}},
		{Key: ck{"black", "circle"}}, {Key: ck{"gray", "circle"}},
	}, {
		{Key: ck{"black", "circle"}}, {Key: ck{"light", "triangle"}},
	}}
	res, err := (&Engine{}).Run(job, input)
	if err != nil {
		t.Fatal(err)
	}
	groups := 0
	total := 0
	for _, kv := range res.Output {
		groups++
		total += kv.Value.(int)
	}
	if groups != 4 {
		t.Errorf("distinct (color,shape) groups = %d, want 4", groups)
	}
	if total != 6 {
		t.Errorf("total grouped records = %d, want 6", total)
	}
}

func TestGroupCoarserThanSort(t *testing.T) {
	// Sort by (a,b), group by a only: reduce sees values sorted by b.
	type ck struct{ a, b int }
	job := &BoxedJob{
		Name:           "secondary-sort",
		NumReduceTasks: 2,
		NewMapper: func() BoxedMapper {
			return &FuncMapper{OnMap: func(ctx *BoxedContext, kv KeyValue) { ctx.Emit(kv.Key, kv.Value) }}
		},
		NewReducer: func() BoxedReducer {
			return &FuncReducer{
				OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
					var bs []int
					for _, v := range values {
						bs = append(bs, v.Key.(ck).b)
					}
					ctx.Emit(key.(ck).a, bs)
				},
			}
		},
		Partition: func(key any, r int) int { return key.(ck).a % r },
		Compare: func(x, y any) int {
			kx, ky := x.(ck), y.(ck)
			if c := CompareInts(kx.a, ky.a); c != 0 {
				return c
			}
			return CompareInts(kx.b, ky.b)
		},
		Group: func(x, y any) int { return CompareInts(x.(ck).a, y.(ck).a) },
	}
	res, err := (&Engine{}).Run(job, [][]KeyValue{{
		{Key: ck{0, 5}}, {Key: ck{0, 1}}, {Key: ck{1, 9}}, {Key: ck{0, 3}}, {Key: ck{1, 2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int][]int{0: {1, 3, 5}, 1: {2, 9}}
	for _, kv := range res.Output {
		a := kv.Key.(int)
		if got := kv.Value.([]int); !reflect.DeepEqual(got, want[a]) {
			t.Errorf("group a=%d: values %v, want %v (secondary sort broken)", a, got, want[a])
		}
	}
}

func TestSideOutputPerTask(t *testing.T) {
	job := wordCountJob(2, false)
	job.NewMapper = func() BoxedMapper {
		return &FuncMapper{
			OnMap: func(ctx *BoxedContext, kv KeyValue) {
				ctx.SideEmit("side", kv.Value)
				ctx.Emit(kv.Value.(string), 1)
			},
		}
	}
	res, err := (&Engine{}).Run(job, [][]KeyValue{
		{{Value: "a"}, {Value: "b"}},
		{{Value: "c"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SideOutput[0]) != 2 || len(res.SideOutput[1]) != 1 {
		t.Errorf("side output lengths = %d/%d, want 2/1", len(res.SideOutput[0]), len(res.SideOutput[1]))
	}
	if res.MapMetrics[0].SideOutputRecords != 2 {
		t.Errorf("map 0 side records = %d, want 2", res.MapMetrics[0].SideOutputRecords)
	}
}

func TestValidation(t *testing.T) {
	good := wordCountJob(2, false)
	eng := &Engine{}
	if _, err := eng.Run(good, nil); err == nil {
		t.Error("no input partitions: want error")
	}
	bad := wordCountJob(0, false)
	if _, err := eng.Run(bad, [][]KeyValue{lines("a")}); err == nil {
		t.Error("r=0: want error")
	}
	noMap := wordCountJob(1, false)
	noMap.NewMapper = nil
	if _, err := eng.Run(noMap, [][]KeyValue{lines("a")}); err == nil {
		t.Error("nil NewMapper: want error")
	}
	noCmp := wordCountJob(1, false)
	noCmp.Compare = nil
	if _, err := eng.Run(noCmp, [][]KeyValue{lines("a")}); err == nil {
		t.Error("nil Compare: want error")
	}
}

func TestBadPartitionFunctionIsAnError(t *testing.T) {
	job := wordCountJob(2, false)
	job.Partition = func(any, int) int { return 99 }
	_, err := (&Engine{}).Run(job, [][]KeyValue{lines("a")})
	if err == nil || !strings.Contains(err.Error(), "partition function returned") {
		t.Errorf("out-of-range partition: err = %v", err)
	}
}

func TestPanicsInUserCodeBecomeErrors(t *testing.T) {
	job := wordCountJob(1, false)
	job.NewMapper = func() BoxedMapper {
		return &FuncMapper{OnMap: func(*BoxedContext, KeyValue) { panic("boom in map") }}
	}
	if _, err := (&Engine{}).Run(job, [][]KeyValue{lines("a")}); err == nil || !strings.Contains(err.Error(), "boom in map") {
		t.Errorf("map panic: err = %v", err)
	}
	job2 := wordCountJob(1, false)
	job2.NewReducer = func() BoxedReducer {
		return &FuncReducer{OnReduce: func(*BoxedContext, any, []KeyValue) { panic("boom in reduce") }}
	}
	if _, err := (&Engine{}).Run(job2, [][]KeyValue{lines("a")}); err == nil || !strings.Contains(err.Error(), "boom in reduce") {
		t.Errorf("reduce panic: err = %v", err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	res, err := (&Engine{}).Run(wordCountJob(2, false), [][]KeyValue{
		lines("a b", "c d e"),
		lines("f"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MapMetrics[0].InputRecords; got != 2 {
		t.Errorf("map 0 input = %d, want 2", got)
	}
	if got := res.MapMetrics[0].OutputRecords; got != 5 {
		t.Errorf("map 0 output = %d, want 5", got)
	}
	if res.MapOutputRecords != 6 {
		t.Errorf("total map output = %d, want 6", res.MapOutputRecords)
	}
	var reduceIn, groups int64
	for _, m := range res.ReduceMetrics {
		reduceIn += m.InputRecords
		groups += m.InputGroups
	}
	if reduceIn != 6 {
		t.Errorf("reduce input = %d, want 6", reduceIn)
	}
	if groups != 6 {
		t.Errorf("reduce groups = %d, want 6 distinct words", groups)
	}
}

func TestUserCounters(t *testing.T) {
	job := wordCountJob(2, false)
	job.NewReducer = func() BoxedReducer {
		return &FuncReducer{
			OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
				ctx.Inc("groups", 1)
				ctx.Inc("values", int64(len(values)))
			},
		}
	}
	res, err := (&Engine{}).Run(job, [][]KeyValue{lines("a b a")})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counter("groups"); got != 2 {
		t.Errorf("groups counter = %d, want 2", got)
	}
	if got := res.Counter("values"); got != 3 {
		t.Errorf("values counter = %d, want 3", got)
	}
	if got := res.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
}

// TestDeterminismAcrossParallelism: identical output regardless of
// worker count.
func TestDeterminismAcrossParallelism(t *testing.T) {
	input := [][]KeyValue{
		lines("x y z x", "w w"),
		lines("y y y"),
		lines("z"),
		lines("q r s t u v w x y z"),
	}
	var baseline []KeyValue
	for _, par := range []int{1, 2, 4, 8} {
		res, err := (&Engine{Parallelism: par}).Run(wordCountJob(5, true), input)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res.Output
			continue
		}
		if !reflect.DeepEqual(res.Output, baseline) {
			t.Errorf("parallelism %d changed output", par)
		}
	}
}

func TestTaskKindString(t *testing.T) {
	if MapTask.String() != "map" || ReduceTask.String() != "reduce" {
		t.Error("TaskKind strings wrong")
	}
}

func TestHashPartitionStableAndInRange(t *testing.T) {
	for r := 1; r <= 17; r++ {
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("key-%d", i)
			p := HashPartition(key, r)
			if p < 0 || p >= r {
				t.Fatalf("HashPartition(%q, %d) = %d out of range", key, r, p)
			}
			if p != HashPartition(key, r) {
				t.Fatalf("HashPartition not deterministic for %q", key)
			}
		}
	}
}

func TestCompareHelpers(t *testing.T) {
	if CompareStrings("a", "b") >= 0 || CompareStrings("b", "a") <= 0 || CompareStrings("a", "a") != 0 {
		t.Error("CompareStrings wrong")
	}
	if CompareInts(1, 2) >= 0 || CompareInts(2, 1) <= 0 || CompareInts(3, 3) != 0 {
		t.Error("CompareInts wrong")
	}
	if CompareInt64s(1, 2) >= 0 || CompareInt64s(2, 1) <= 0 || CompareInt64s(3, 3) != 0 {
		t.Error("CompareInt64s wrong")
	}
}

// TestReduceOutputOrderedByTask: outputs concatenate in reduce-task
// index order.
func TestReduceOutputOrderedByTask(t *testing.T) {
	job := &BoxedJob{
		Name:           "task-order",
		NumReduceTasks: 4,
		NewMapper: func() BoxedMapper {
			return &FuncMapper{OnMap: func(ctx *BoxedContext, kv KeyValue) { ctx.Emit(kv.Value.(int), nil) }}
		},
		NewReducer: func() BoxedReducer {
			return &FuncReducer{OnReduce: func(ctx *BoxedContext, key any, _ []KeyValue) { ctx.Emit(key, nil) }}
		},
		Partition: func(key any, r int) int { return key.(int) % r },
		Compare:   func(a, b any) int { return CompareInts(a.(int), b.(int)) },
	}
	res, err := (&Engine{Parallelism: 4}).Run(job, [][]KeyValue{{
		{Value: 3}, {Value: 1}, {Value: 2}, {Value: 0}, {Value: 7}, {Value: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for _, kv := range res.Output {
		got = append(got, kv.Key.(int))
	}
	// Task 0: 0; task 1: 1, 5; task 2: 2; task 3: 3, 7.
	want := []int{0, 1, 5, 2, 3, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("output order = %v, want %v", got, want)
	}
}
