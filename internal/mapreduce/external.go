package mapreduce

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/runio"
)

// This file implements DataflowExternal, the out-of-core realization of
// the typed engine: the Hadoop dataflow where map output beyond a
// per-task byte budget spills to sorted on-disk runs and reducers
// stream an external k-way merge over run segments.
//
// The execution model is unchanged — same partition/compare/group
// semantics, same stability guarantee — only the residency of the
// intermediate records differs, so results are byte-identical to
// DataflowTyped (the differential tests assert it, TaskMetrics
// included, spill counters excepted). The moving pieces:
//
//   - extSpiller accumulates map output twice: decoded (for the spill
//     sort and the in-memory tail) and encoded (runio codecs, applied
//     once per record at emit time, which also gives exact byte-
//     denominated budget accounting). When the encoded bytes reach the
//     budget, the batch is stable-sorted by (reduce partition, key) —
//     the record's binary key code first, exactly like the in-memory
//     engine — and written as one run file (runio.Writer).
//   - The stability tiebreak extends from (key, mapTask) to (key,
//     mapTask, run): runs are temporal segments of one task's output,
//     so merging them in run order with the in-memory tail last
//     reproduces the task's emission order for equal keys, and the
//     merged stream is identical to the all-in-memory sort.
//   - With a combiner, the task's spilled runs and tail are first
//     k-way merged back (map-side), combined group-by-group exactly
//     like the in-memory combine, and the combiner's output flows
//     through a second-generation spiller. This keeps combiner group
//     boundaries — and therefore every metric — identical to the
//     typed engine, unlike Hadoop's per-spill combining.
//   - Reduce task j merges, per map task, the partition-j segment of
//     every run plus the in-memory tail bucket, all behind the same
//     merge-heap discipline as the in-memory path.
//
// Temp-file lifecycle: Run creates one directory under Engine.TmpDir
// and removes it on every exit path, success or error. Each map
// *attempt* writes its runs into an attempt-scoped subdirectory
// (m0007-a001/); the supervisor's commit step atomically adopts the
// directory by renaming it to the task's final name (m0007/), and a
// failed or superseded attempt's directory is reaped instead — so
// concurrent attempts of one task never collide and a retried task
// never leaves stale runs behind. First-generation runs are
// additionally deleted as soon as the map-side combine has drained
// them.

// DefaultSpillBudget is the per-map-task encoded-byte budget when
// Engine.SpillBudget is zero.
const DefaultSpillBudget = 64 << 20

// extConfig carries the run-wide external-dataflow parameters.
type extConfig[K, V any] struct {
	kc        runio.Codec[K]
	vc        runio.Codec[V]
	dir       string
	budget    int64
	codeWidth int
	// shared is true when both codecs implement runio.SharedDecoder, so
	// merge sources read through the arena path (block strings, aliasing
	// decoders, zero copies per record) instead of the byte path.
	shared bool
	// obs/jobID thread the run's observability identity to the spillers
	// and merge paths (spill spans, spill-byte counters). nil when off.
	obs   *obs.Observer
	jobID uint32
}

// runExternal executes the job on the external dataflow (the job is
// already validated by Job.run, which dispatches here). See
// Job.RunContext for the semantics; this path additionally requires
// runio codecs registered for K and V. The deferred RemoveAll makes the
// spill directory die on every exit path — cancellation included.
func (j *Job[I, K, V, O]) runExternal(ctx context.Context, e *Engine, input [][]I, sink *outputSink[O]) (*Result[I, O], error) {
	m := len(input)
	kc, ok := runio.Lookup[K]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: external dataflow: no runio codec registered for key type %T (runio.Register it in the key's package)", j.Name, *new(K))
	}
	vc, ok := runio.Lookup[V]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: external dataflow: no runio codec registered for value type %T (runio.Register it in the value's package)", j.Name, *new(V))
	}
	if e.TmpDir != "" {
		if err := os.MkdirAll(e.TmpDir, 0o755); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: create tmp dir: %w", j.Name, err)
		}
	}
	dir, err := os.MkdirTemp(e.TmpDir, "mr-spill-*")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: create spill dir: %w", j.Name, err)
	}
	// The spill directory dies with this Run on every exit path.
	defer os.RemoveAll(dir)

	st := newRunState(j)
	st.limiter = newSortLimiter(e.Parallelism)
	jobID := e.beginJob(j.Name)
	defer e.endJob(jobID)
	st.obs, st.jobID = e.Obs, jobID
	cfg := &extConfig[K, V]{kc: kc, vc: vc, dir: dir, budget: e.SpillBudget, obs: e.Obs, jobID: jobID}
	if cfg.budget <= 0 {
		cfg.budget = DefaultSpillBudget
	}
	_, kshared := kc.(runio.SharedDecoder[K])
	_, vshared := vc.(runio.SharedDecoder[V])
	cfg.shared = kshared && vshared
	if st.encode != nil {
		cfg.codeWidth = 16
	}

	r := j.NumReduceTasks
	res := &Result[I, O]{
		Metrics: Metrics{
			JobName:       j.Name,
			MapMetrics:    make([]TaskMetrics, m),
			ReduceMetrics: make([]TaskMetrics, r),
		},
		SideOutput: make([][]I, m),
	}

	// ---- Map phase (spilling) ----
	mapOut := make([]extMapOutput[I, K, V], m)
	mstats, merr := superviseTasks(ctx, e, MapTask, jobID, m,
		func(actx context.Context, hook *taskHook, task, attempt int) (extMapOutput[I, K, V], error) {
			return st.runMapAttemptExternal(actx, hook, cfg, task, attempt, m, input[task])
		},
		func(task int, out extMapOutput[I, K, V]) error {
			// Adopt the attempt's spill directory under the task's final
			// name; the rename is the commit point for the on-disk runs.
			// The spill file's open fd survives the rename — the reduce
			// phase reads through it, so the file is never reopened.
			if len(out.runs) == 0 {
				out.closeFile()
				if out.dir != "" {
					os.RemoveAll(out.dir)
				}
			} else {
				final := filepath.Join(cfg.dir, fmt.Sprintf("m%04d", task))
				if err := os.Rename(out.dir, final); err != nil {
					out.closeFile()
					return fmt.Errorf("adopt spill dir: %w", err)
				}
				for _, info := range out.runs {
					info.Path = filepath.Join(final, filepath.Base(info.Path))
				}
			}
			out.metrics.Kind = MapTask
			out.metrics.Index = task
			res.MapMetrics[task] = out.metrics
			res.SideOutput[task] = out.side
			mapOut[task] = out
			return nil
		},
		func(out extMapOutput[I, K, V]) {
			out.closeFile()
			if out.dir != "" {
				os.RemoveAll(out.dir)
			}
			st.pools.putRecBuf(out.flat)
		},
	)
	res.addStats(mstats)
	// Committed map tasks hand over their spill file's open fd; close
	// them all on every exit path from here on (the reduce phase reads
	// through these fds via pread — runs are never reopened).
	defer func() {
		for i := range mapOut {
			mapOut[i].closeFile()
		}
	}()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if merr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, merr)
	}
	for i := range res.MapMetrics {
		res.MapOutputRecords += res.MapMetrics[i].OutputRecords
	}

	// ---- Shuffle + external merge + reduce phase ----
	reduceOut := make([][]O, r)
	rstats, rerr := superviseTasks(ctx, e, ReduceTask, jobID, r,
		func(actx context.Context, hook *taskHook, task, attempt int) (typedReduceOut[O], error) {
			return st.runReduceAttemptExternal(actx, hook, cfg, task, attempt, mapOut)
		},
		func(task int, out typedReduceOut[O]) error {
			out.metrics.Kind = ReduceTask
			out.metrics.Index = task
			res.ReduceMetrics[task] = out.metrics
			if sink != nil {
				sink.writeAll(out.out)
				putOutBuf(st.outPool, out.out)
				return nil
			}
			reduceOut[task] = out.out
			return nil
		},
		func(out typedReduceOut[O]) { putOutBuf(st.outPool, out.out) },
	)
	res.addStats(rstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if rerr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, rerr)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: output sink: %w", j.Name, err)
		}
	}
	var total int
	for jj := range reduceOut {
		total += len(reduceOut[jj])
	}
	res.Output = make([]O, 0, total)
	for jj := range reduceOut {
		res.Output = append(res.Output, reduceOut[jj]...)
		putOutBuf(st.outPool, reduceOut[jj])
	}
	for i := range mapOut {
		st.pools.putRecBuf(mapOut[i].flat)
	}
	return res, nil
}

// extMapOutput is one map attempt's shuffle-ready output on the
// external dataflow: zero or more sorted on-disk runs in the attempt's
// spill directory plus the in-memory tail, already bucketed and sorted
// like a typed-engine task's output. The supervisor's commit step
// renames dir to the task's final name (updating the run paths) or
// reaps it when the attempt is discarded.
type extMapOutput[I, K, V any] struct {
	runs    []*runio.Info
	file    *os.File // the open spill file holding every run in runs
	buckets [][]Rec[K, V]
	flat    []Rec[K, V]
	side    []I
	dir     string
	metrics TaskMetrics
}

func (out *extMapOutput[I, K, V]) closeFile() {
	if out.file != nil {
		out.file.Close()
		out.file = nil
	}
}

func (st *runState[I, K, V, O]) runMapAttemptExternal(actx context.Context, hook *taskHook, cfg *extConfig[K, V], idx, attempt, m int, input []I) (out extMapOutput[I, K, V], err error) {
	// Declared before recoverAttempt so it runs after it (LIFO): by the
	// time the attempt's spill directory is reaped, a recovered panic
	// has already been translated into err. Spill-file fds opened by the
	// attempt's spillers are closed on the same path.
	var spillers []*extSpiller[K, V]
	defer func() {
		if err != nil {
			for _, s := range spillers {
				s.closeFile()
			}
			if out.dir != "" {
				os.RemoveAll(out.dir)
				out.dir = ""
			}
		}
	}()
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return out, err
	}
	out.dir = filepath.Join(cfg.dir, fmt.Sprintf("m%04d-a%03d", idx, attempt))
	if err := os.MkdirAll(out.dir, 0o755); err != nil {
		return out, err
	}
	j := st.job
	r := j.NumReduceTasks
	metrics := &out.metrics
	sp := st.newSpiller(cfg, out.dir, "g0", idx, attempt, metrics, hook)
	spillers = append(spillers, sp)
	ctx := &MapContext[I, K, V]{metrics: metrics, encode: st.encode, spill: sp, sideCap: len(input), hook: hook}
	mapper := j.NewMapper()
	mapper.Configure(m, r, idx)
	check := actx.Done() != nil
	for i := range input {
		if check && i&cancelCheckMask == 0 && actx.Err() != nil {
			return out, actx.Err()
		}
		metrics.InputRecords++
		mapper.Map(ctx, input[i])
	}
	if sp.err != nil {
		return out, sp.err
	}
	out.side = ctx.side

	if j.NewCombiner == nil {
		out.runs = sp.runs
		out.file = sp.f // ownership moves to the output (commit/discard)
		out.buckets, out.flat, err = st.partitionAndSort(sp.takeRecs())
		return out, err
	}

	if len(sp.runs) == 0 {
		// Nothing spilled: the whole task fits in budget, so the
		// combine is the typed engine's, verbatim.
		combined, cerr := st.combine(idx, m, sp.recs, metrics, hook)
		st.pools.putRecBuf(sp.takeRecs())
		if cerr != nil {
			return out, cerr
		}
		metrics.OutputRecords = int64(len(combined))
		out.buckets, out.flat, err = st.partitionAndSort(combined)
		return out, err
	}

	// Map-side external merge + combine: stream the spilled runs and
	// the sorted tail back in (partition, key, run) order, cut the
	// stream into the same groups the in-memory combine would form
	// (a group never spans partitions — grouping must be compatible
	// with partitioning, as in Hadoop), and feed the combiner, whose
	// output flows through a second-generation spiller.
	sp2 := st.newSpiller(cfg, out.dir, "g1", idx, attempt, metrics, hook)
	spillers = append(spillers, sp2)
	cctx := &MapContext[I, K, V]{metrics: metrics, encode: st.encode, spill: sp2, hook: hook}
	combiner := j.NewCombiner()
	combiner.Configure(m, r, idx)
	if err := st.mergeSpilled(cfg, sp, metrics, hook, func(group []Rec[K, V]) {
		combiner.Combine(cctx, group[0].Key, group)
	}); err != nil {
		return out, err
	}
	if sp2.err != nil {
		return out, sp2.err
	}
	// The combiner rewrote the task's output; fix the metric (the
	// typed engine does the same after its in-memory combine).
	metrics.OutputRecords = sp2.count
	out.runs = sp2.runs
	out.file = sp2.f // ownership moves to the output (commit/discard)
	out.buckets, out.flat, err = st.partitionAndSort(sp2.takeRecs())
	return out, err
}

// mergeSpilled merges one map task's spilled runs and in-memory tail
// back into (partition, key, run)-ordered groups and hands each group
// to emit. The first-generation run files are deleted once drained.
func (st *runState[I, K, V, O]) mergeSpilled(cfg *extConfig[K, V], sp *extSpiller[K, V], metrics *TaskMetrics, hook *taskHook, emit func(group []Rec[K, V])) error {
	if err := hook.fire(FaultMerge); err != nil {
		return err
	}
	if cfg.obs != nil {
		st.recordMerge(obs.EvBegin, obs.PhaseMap, sp.task, sp.attempt, int64(len(sp.runs)))
		defer st.recordMerge(obs.EvEnd, obs.PhaseMap, sp.task, sp.attempt, int64(len(sp.runs)))
	}
	dec := newRecDecoder(cfg)
	sources := make([]mergeSource[K, V], 0, len(sp.runs)+1)
	var spillRead *obs.Counter // nil-safe handle when observability is off
	if cfg.obs != nil {
		spillRead = cfg.obs.Engine.SpillBytesRead
	}
	for _, info := range sp.runs {
		// The spiller's fd is still open; runs are read back through it
		// via pread — no reopen.
		if cfg.shared {
			sources = append(sources, &sharedRunSource[K, V]{f: sp.f, info: info, dec: dec})
		} else {
			sources = append(sources, &runSource[K, V]{f: sp.f, info: info, dec: dec})
		}
		metrics.SpillBytesRead += info.Bytes
		spillRead.Add(info.Bytes)
	}
	parts, perm, err := sp.sortedPerm()
	if err != nil {
		return err
	}
	defer putInt32Buf(parts)
	defer putInt32Buf(perm)
	if len(sp.recs) > 0 {
		sources = append(sources, &tailSource[K, V]{recs: sp.recs, parts: parts, perm: perm})
	}

	mg, err := newExtMerger(st, sources)
	if err != nil {
		return err
	}
	group := st.pools.getRecBuf()
	var part int32
	for {
		rec, p, ok, err := mg.next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if len(group) > 0 && (p != part || !st.sameGroup(&group[0], &rec)) {
			emit(group)
			group = group[:0]
		}
		group = append(group, rec)
		part = p
	}
	if len(group) > 0 {
		emit(group)
	}
	st.pools.putRecBuf(group)
	st.pools.putRecBuf(sp.takeRecs())
	// Generation-0 runs are dead; free the disk before gen-1 grows.
	sp.closeFile()
	if sp.path != "" {
		os.Remove(sp.path)
	}
	return nil
}

func (st *runState[I, K, V, O]) runReduceAttemptExternal(actx context.Context, hook *taskHook, cfg *extConfig[K, V], idx, attempt int, mapOut []extMapOutput[I, K, V]) (rout typedReduceOut[O], err error) {
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return rout, err
	}
	j := st.job
	metrics := &rout.metrics
	ctx := &ReduceContext[O]{metrics: metrics, out: getOutBuf[O](st.outPool), hook: hook}
	reducer := j.NewReducer()
	reducer.Configure(len(mapOut), j.NumReduceTasks, idx)

	// One source per (map task, run) segment plus one per in-memory
	// tail bucket, in (map task, run, tail) order: the source index is
	// the merge tiebreak, which extends the typed engine's map-task
	// tiebreak with temporal run order — the stability guarantee.
	dec := newRecDecoder(cfg)
	var sources []mergeSource[K, V]
	var total int64
	var spillRead *obs.Counter // nil-safe handle when observability is off
	if cfg.obs != nil {
		spillRead = cfg.obs.Engine.SpillBytesRead
	}
	for mi := range mapOut {
		for _, info := range mapOut[mi].runs {
			seg := info.Segments[idx]
			if seg.Records == 0 {
				continue
			}
			if cfg.shared {
				ss := &sharedSegSource[K, V]{dec: dec, part: int32(idx)}
				ss.sr.Init(mapOut[mi].file, seg, info.Path)
				sources = append(sources, ss)
			} else {
				sources = append(sources, &segSource[K, V]{
					sr:   runio.NewSegmentReader(mapOut[mi].file, seg, info.Path),
					dec:  dec,
					part: int32(idx),
				})
			}
			total += seg.Records
			metrics.SpillBytesRead += seg.Len
			spillRead.Add(seg.Len)
		}
		if b := mapOut[mi].buckets[idx]; len(b) > 0 {
			sources = append(sources, &bucketSource[K, V]{recs: b, part: int32(idx)})
			total += int64(len(b))
		}
	}
	metrics.InputRecords = total

	if err := hook.fire(FaultMerge); err != nil {
		return rout, err
	}
	if st.obs != nil {
		st.recordMerge(obs.EvBegin, obs.PhaseReduce, idx, attempt, total)
		defer st.recordMerge(obs.EvEnd, obs.PhaseReduce, idx, attempt, total)
	}
	mg, err := newExtMerger(st, sources)
	if err != nil {
		return rout, err
	}
	group := st.pools.getRecBuf()
	check := actx.Done() != nil
	for n := 0; ; n++ {
		if check && n&cancelCheckMask == 0 && actx.Err() != nil {
			return rout, actx.Err()
		}
		rec, _, ok, err := mg.next()
		if err != nil {
			return rout, err
		}
		if !ok {
			break
		}
		if len(group) > 0 && !st.sameGroup(&group[0], &rec) {
			st.emitGroup(ctx, reducer, group)
			group = group[:0]
		}
		group = append(group, rec)
	}
	if len(group) > 0 {
		st.emitGroup(ctx, reducer, group)
	}
	st.pools.putRecBuf(group)
	rout.out = ctx.out
	return rout, nil
}

// ---- the spiller ----

// extSpiller buffers one map task's emitted records, encoded once at
// emit time (exact byte budget accounting, no re-encode at spill), and
// flushes sorted runs whenever the encoded bytes reach the budget.
type extSpiller[K, V any] struct {
	cfg     *extConfig[K, V]
	dir     string // the attempt's spill directory
	prefix  string // run generation within the attempt ("g0"/"g1")
	r       int
	cmp     func(a, b *Rec[K, V]) int
	part    func(K, int) int
	limiter *sortLimiter
	metrics *TaskMetrics
	hook    *taskHook
	// task/attempt identify the owning attempt in spill trace spans.
	task    int
	attempt int

	recs  []Rec[K, V]
	enc   []byte
	spans []extSpan
	runs  []*runio.Info
	count int64 // records appended over the task's lifetime
	err   error // sticky: first spill failure stops the task

	// All of a generation's runs are appended as sections of one spill
	// file sharing one fd (runio.NewRunWriter), created lazily at the
	// first spill. The fd is kept open — the map-side combine and the
	// reduce phase read segments through it via pread — so a run costs
	// zero file-lifecycle syscalls beyond its writes, instead of the
	// create/close/reopen/unlink per run that dominated small-budget
	// profiles.
	f       *os.File
	path    string
	fileOff int64
}

type extSpan struct{ off, end int64 }

// recordSpill emits a spill-span event with the owning attempt's
// identity. Callers guard on cfg.obs.
func (sp *extSpiller[K, V]) recordSpill(typ obs.EventType, arg int64) {
	sp.cfg.obs.Tracer.Record(obs.Event{
		Type: typ, Kind: obs.KSpill, Phase: obs.PhaseMap, Job: sp.cfg.jobID,
		Task: int32(sp.task), Attempt: int32(sp.attempt), Arg: arg,
	})
}

func (st *runState[I, K, V, O]) newSpiller(cfg *extConfig[K, V], dir, prefix string, task, attempt int, metrics *TaskMetrics, hook *taskHook) *extSpiller[K, V] {
	return &extSpiller[K, V]{
		cfg:     cfg,
		dir:     dir,
		prefix:  prefix,
		r:       st.job.NumReduceTasks,
		cmp:     st.cmp,
		part:    st.job.Partition,
		limiter: st.limiter,
		metrics: metrics,
		hook:    hook,
		task:    task,
		attempt: attempt,
	}
}

// add appends one record, spilling the buffered batch when the encoded
// bytes reach the budget. Errors are sticky (checked by the task after
// the map loop) because Emit has no error channel.
func (sp *extSpiller[K, V]) add(rec Rec[K, V]) {
	if sp.err != nil {
		return
	}
	off := int64(len(sp.enc))
	if sp.cfg.codeWidth != 0 {
		sp.enc = binary.LittleEndian.AppendUint64(sp.enc, rec.code.Hi)
		sp.enc = binary.LittleEndian.AppendUint64(sp.enc, rec.code.Lo)
	}
	sp.enc = sp.cfg.kc.Append(sp.enc, rec.Key)
	sp.enc = sp.cfg.vc.Append(sp.enc, rec.Value)
	sp.spans = append(sp.spans, extSpan{off: off, end: int64(len(sp.enc))})
	sp.recs = append(sp.recs, rec)
	sp.count++
	if int64(len(sp.enc)) >= sp.cfg.budget {
		sp.err = sp.spill()
	}
}

// closeFile closes the generation's spill file fd (idempotent). Called
// when ownership is NOT being handed to extMapOutput: after the
// map-side combine drains generation 0, or on attempt failure.
func (sp *extSpiller[K, V]) closeFile() {
	if sp.f != nil {
		sp.f.Close()
		sp.f = nil
	}
}

// takeRecs hands the decoded tail to the caller and detaches it from
// the spiller (the encoded copy is dropped).
func (sp *extSpiller[K, V]) takeRecs() []Rec[K, V] {
	recs := sp.recs
	sp.recs = nil
	sp.enc = nil
	sp.spans = nil
	return recs
}

// sortedPerm computes each buffered record's reduce partition and a
// permutation that orders the batch by (partition, key) — binary key
// code first, like every other sort in the engine — stable in emission
// order. Both slices are pooled; the caller returns them.
func (sp *extSpiller[K, V]) sortedPerm() (parts, perm []int32, err error) {
	n := len(sp.recs)
	parts = getInt32Buf(n)
	perm = getInt32Buf(n)
	for i := range sp.recs {
		p := sp.part(sp.recs[i].Key, sp.r)
		if p < 0 || p >= sp.r {
			putInt32Buf(parts)
			putInt32Buf(perm)
			// A deterministic user-logic bug: re-running cannot fix it.
			return nil, nil, Fatal(fmt.Errorf("partition function returned %d for %d reduce tasks", p, sp.r))
		}
		parts[i] = int32(p)
		perm[i] = int32(i)
	}
	// Sort the permutation by (partition, key) with the shared stable
	// merge sort — parallel when the run's limiter has free workers,
	// bitwise-identical to the serial order either way (parsort.go).
	cmp := func(x, y *int32) int {
		a, b := *x, *y
		if parts[a] != parts[b] {
			return int(parts[a]) - int(parts[b])
		}
		return sp.cmp(&sp.recs[a], &sp.recs[b])
	}
	scratch := getInt32Buf(n)
	stableSortParallelG(perm, scratch, sp.limiter, cmp)
	putInt32Buf(scratch)
	return parts, perm, nil
}

// spill writes the buffered batch as one sorted run file and resets the
// buffers (capacity retained: the next batch will be about as large).
func (sp *extSpiller[K, V]) spill() error {
	if len(sp.recs) == 0 {
		return nil
	}
	if err := sp.hook.fire(FaultSpill); err != nil {
		return err
	}
	if sp.cfg.obs != nil {
		sp.recordSpill(obs.EvBegin, int64(len(sp.enc)))
		// Arg mirrors the begin event's buffered-byte count; the span's
		// duration covers the sort and the run write together.
		defer sp.recordSpill(obs.EvEnd, int64(len(sp.enc)))
	}
	parts, perm, err := sp.sortedPerm()
	if err != nil {
		return err
	}
	defer putInt32Buf(parts)
	defer putInt32Buf(perm)
	if sp.f == nil {
		sp.path = filepath.Join(sp.dir, sp.prefix+".runs")
		f, err := os.OpenFile(sp.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return fmt.Errorf("create spill file: %w", err)
		}
		sp.f = f
	}
	w, err := runio.NewRunWriter(sp.f, sp.fileOff, sp.r, sp.cfg.codeWidth)
	if err != nil {
		return err
	}
	for _, i := range perm {
		s := sp.spans[i]
		if err := w.Append(int(parts[i]), sp.enc[s.off:s.end]); err != nil {
			w.Abort()
			return err
		}
	}
	info, err := w.Finish()
	if err != nil {
		return err
	}
	sp.fileOff += info.FileBytes
	sp.runs = append(sp.runs, info)
	sp.metrics.SpillRuns++
	sp.metrics.SpillBytesWritten += info.FileBytes
	if o := sp.cfg.obs; o != nil {
		// Obs counters count every attempt's spills as they happen;
		// TaskMetrics above is attempt-private and published only on
		// commit — that asymmetry is deliberate (obs is observational,
		// TaskMetrics is inside the differential contract).
		o.Engine.SpillRuns.Inc()
		o.Engine.SpillBytesWritten.Add(info.FileBytes)
	}
	clear(sp.recs)
	sp.recs = sp.recs[:0]
	sp.enc = sp.enc[:0]
	sp.spans = sp.spans[:0]
	return nil
}

// ---- merge sources and the external merge heap ----

// recDecoder decodes one on-disk record (code ‖ key ‖ value) into a
// Rec. On the byte path, decoded values never alias the read buffer
// (codec contract); on the shared path (kdec/vdec non-nil), decoded
// strings alias the reader's immutable blocks (SharedDecoder contract).
type recDecoder[K, V any] struct {
	kc        runio.Codec[K]
	vc        runio.Codec[V]
	codeWidth int
	kdec      func(string) (K, int, error)
	vdec      func(string) (V, int, error)
}

// newRecDecoder builds the per-attempt decoder; the shared decode
// functions are stateful (arenas) and single-goroutine, hence one
// decoder per task attempt, shared across that attempt's sources.
func newRecDecoder[K, V any](cfg *extConfig[K, V]) *recDecoder[K, V] {
	d := &recDecoder[K, V]{kc: cfg.kc, vc: cfg.vc, codeWidth: cfg.codeWidth}
	if cfg.shared {
		d.kdec = cfg.kc.(runio.SharedDecoder[K]).NewSharedDecoder()
		d.vdec = cfg.vc.(runio.SharedDecoder[V]).NewSharedDecoder()
	}
	return d
}

func (d *recDecoder[K, V]) decode(b []byte, dst *Rec[K, V]) error {
	if d.codeWidth != 0 {
		if len(b) < d.codeWidth {
			return fmt.Errorf("%w: record shorter than key code", runio.ErrCorrupt)
		}
		dst.code.Hi = binary.LittleEndian.Uint64(b)
		dst.code.Lo = binary.LittleEndian.Uint64(b[8:])
		b = b[d.codeWidth:]
	} else {
		dst.code = Code{}
	}
	k, n, err := d.kc.Decode(b)
	if err != nil {
		return fmt.Errorf("decode key: %w", err)
	}
	v, n2, err := d.vc.Decode(b[n:])
	if err != nil {
		return fmt.Errorf("decode value: %w", err)
	}
	if n+n2 != len(b) {
		return fmt.Errorf("%w: %d trailing record bytes", runio.ErrCorrupt, len(b)-n-n2)
	}
	dst.Key, dst.Value = k, v
	return nil
}

// decodeShared is decode over a record string from the arena read path.
func (d *recDecoder[K, V]) decodeShared(b string, dst *Rec[K, V]) error {
	if d.codeWidth != 0 {
		if len(b) < d.codeWidth {
			return fmt.Errorf("%w: record shorter than key code", runio.ErrCorrupt)
		}
		dst.code.Hi, _ = runio.Uint64LEString(b)
		dst.code.Lo, _ = runio.Uint64LEString(b[8:])
		b = b[d.codeWidth:]
	} else {
		dst.code = Code{}
	}
	k, n, err := d.kdec(b)
	if err != nil {
		return fmt.Errorf("decode key: %w", err)
	}
	v, n2, err := d.vdec(b[n:])
	if err != nil {
		return fmt.Errorf("decode value: %w", err)
	}
	if n+n2 != len(b) {
		return fmt.Errorf("%w: %d trailing record bytes", runio.ErrCorrupt, len(b)-n-n2)
	}
	//erlint:ignore arenaretain engine-internal transient: the record aliases the block only until the group callback returns; sinks clone what they retain
	dst.Key, dst.Value = k, v
	return nil
}

// mergeSource streams one pre-sorted sequence of records into the
// external merge. next fills dst and reports the record's partition;
// ok=false means the source is exhausted.
type mergeSource[K, V any] interface {
	next(dst *Rec[K, V]) (part int32, ok bool, err error)
}

// segSource streams one partition segment of one run file.
type segSource[K, V any] struct {
	sr   *runio.SegmentReader
	dec  *recDecoder[K, V]
	part int32
}

func (s *segSource[K, V]) next(dst *Rec[K, V]) (int32, bool, error) {
	b, err := s.sr.Next()
	if err == io.EOF {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if err := s.dec.decode(b, dst); err != nil {
		return 0, false, err
	}
	return s.part, true, nil
}

// runSource streams a whole run file, segment by segment in partition
// order (the map-side combine merge reads every partition).
type runSource[K, V any] struct {
	f    *os.File
	info *runio.Info
	dec  *recDecoder[K, V]
	cur  int
	sr   *runio.SegmentReader
	part int32
}

func (s *runSource[K, V]) next(dst *Rec[K, V]) (int32, bool, error) {
	for {
		if s.sr == nil {
			for s.cur < len(s.info.Segments) && s.info.Segments[s.cur].Records == 0 {
				s.cur++
			}
			if s.cur >= len(s.info.Segments) {
				return 0, false, nil
			}
			s.sr = runio.NewSegmentReader(s.f, s.info.Segments[s.cur], s.info.Path)
			s.part = int32(s.cur)
			s.cur++
		}
		b, err := s.sr.Next()
		if err == io.EOF {
			s.sr = nil
			continue
		}
		if err != nil {
			return 0, false, err
		}
		if err := s.dec.decode(b, dst); err != nil {
			return 0, false, err
		}
		return s.part, true, nil
	}
}

// sharedSegSource is segSource on the arena read path: records arrive
// as substrings of immutable blocks and decode without copying. The
// reader is embedded by value so a source costs one allocation total.
type sharedSegSource[K, V any] struct {
	sr   runio.SharedSegmentReader
	dec  *recDecoder[K, V]
	part int32
}

func (s *sharedSegSource[K, V]) next(dst *Rec[K, V]) (int32, bool, error) {
	b, err := s.sr.Next()
	if err == io.EOF {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if err := s.dec.decodeShared(b, dst); err != nil {
		return 0, false, err
	}
	return s.part, true, nil
}

// sharedRunSource is runSource on the arena read path.
type sharedRunSource[K, V any] struct {
	f      *os.File
	info   *runio.Info
	dec    *recDecoder[K, V]
	cur    int
	active bool
	sr     runio.SharedSegmentReader
	part   int32
}

func (s *sharedRunSource[K, V]) next(dst *Rec[K, V]) (int32, bool, error) {
	for {
		if !s.active {
			for s.cur < len(s.info.Segments) && s.info.Segments[s.cur].Records == 0 {
				s.cur++
			}
			if s.cur >= len(s.info.Segments) {
				return 0, false, nil
			}
			s.sr.Init(s.f, s.info.Segments[s.cur], s.info.Path)
			s.active = true
			s.part = int32(s.cur)
			s.cur++
		}
		b, err := s.sr.Next()
		if err == io.EOF {
			s.active = false
			continue
		}
		if err != nil {
			return 0, false, err
		}
		if err := s.dec.decodeShared(b, dst); err != nil {
			return 0, false, err
		}
		return s.part, true, nil
	}
}

// bucketSource streams one in-memory tail bucket (reduce side: the
// partition is fixed, the bucket is already sorted).
type bucketSource[K, V any] struct {
	recs []Rec[K, V]
	part int32
	i    int
}

func (s *bucketSource[K, V]) next(dst *Rec[K, V]) (int32, bool, error) {
	if s.i >= len(s.recs) {
		return 0, false, nil
	}
	*dst = s.recs[s.i]
	s.i++
	return s.part, true, nil
}

// tailSource streams the spiller's unspilled tail in (partition, key)
// order through the sortedPerm permutation (map-side combine merge).
type tailSource[K, V any] struct {
	recs  []Rec[K, V]
	parts []int32
	perm  []int32
	i     int
}

func (s *tailSource[K, V]) next(dst *Rec[K, V]) (int32, bool, error) {
	if s.i >= len(s.perm) {
		return 0, false, nil
	}
	j := s.perm[s.i]
	*dst = s.recs[j]
	s.i++
	return s.parts[j], true, nil
}

// extMerger is the external counterpart of recMerger: a binary min-heap
// over merge sources keyed by (partition, record, source index). The
// source-index tiebreak is the (map task, run, tail) order the caller
// appended sources in — the stability guarantee, extended to disk runs.
type extMerger[I, K, V, O any] struct {
	st   *runState[I, K, V, O]
	heap []mergeItem[K, V]
}

type mergeItem[K, V any] struct {
	rec  Rec[K, V]
	part int32
	seq  int32
	src  mergeSource[K, V]
}

func newExtMerger[I, K, V, O any](st *runState[I, K, V, O], sources []mergeSource[K, V]) (*extMerger[I, K, V, O], error) {
	m := &extMerger[I, K, V, O]{st: st, heap: make([]mergeItem[K, V], 0, len(sources))}
	for i, src := range sources {
		it := mergeItem[K, V]{seq: int32(i), src: src}
		part, ok, err := src.next(&it.rec)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		it.part = part
		m.heap = append(m.heap, it)
	}
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m, nil
}

func (m *extMerger[I, K, V, O]) less(x, y *mergeItem[K, V]) bool {
	if x.part != y.part {
		return x.part < y.part
	}
	if c := m.st.cmpRec(&x.rec, &y.rec); c != 0 {
		return c < 0
	}
	return x.seq < y.seq
}

func (m *extMerger[I, K, V, O]) siftDown(i int) {
	h := m.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		s := l
		if r := l + 1; r < n && m.less(&h[r], &h[l]) {
			s = r
		}
		if !m.less(&h[s], &h[i]) {
			return
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
}

// next pops the globally smallest remaining record and refills its
// source. ok=false once every source is drained.
func (m *extMerger[I, K, V, O]) next() (rec Rec[K, V], part int32, ok bool, err error) {
	if len(m.heap) == 0 {
		return rec, 0, false, nil
	}
	top := &m.heap[0]
	rec, part = top.rec, top.part
	p, more, err := top.src.next(&top.rec)
	if err != nil {
		return rec, part, false, err
	}
	if more {
		top.part = p
	} else {
		last := len(m.heap) - 1
		m.heap[0] = m.heap[last]
		m.heap[last] = mergeItem[K, V]{} // drop source + record refs
		m.heap = m.heap[:last]
	}
	if len(m.heap) > 1 {
		m.siftDown(0)
	}
	return rec, part, true, nil
}
