package mapreduce

import (
	"math/rand"
	"strings"
	"testing"
)

// The tests in this file pin the primitive layer of the key-coding
// contract: Code comparison, prefix equality, the string prefix code,
// and the Verify checker itself. Each strategy package fuzzes its own
// composite-key coding against its comparators on top of these.

func TestCodeCmp(t *testing.T) {
	cases := []struct {
		a, b Code
		want int
	}{
		{Code{0, 0}, Code{0, 0}, 0},
		{Code{0, 1}, Code{0, 2}, -1},
		{Code{1, 0}, Code{0, ^uint64(0)}, 1},
		{Code{5, ^uint64(0)}, Code{6, 0}, -1},
		{Code{^uint64(0), ^uint64(0)}, Code{^uint64(0), ^uint64(0)}, 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Cmp(c.a); got != -c.want {
			t.Errorf("Cmp(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

// prefixEqualRef is the obvious mask-based reference implementation.
func prefixEqualRef(a, b Code, bits int) bool {
	if bits >= 128 {
		return a == b
	}
	if bits <= 64 {
		mask := ^uint64(0) << (64 - uint(bits))
		return a.Hi&mask == b.Hi&mask
	}
	mask := ^uint64(0) << (128 - uint(bits))
	return a.Hi == b.Hi && a.Lo&mask == b.Lo&mask
}

func TestCodePrefixEqualMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randCode := func() Code {
		c := Code{Hi: rng.Uint64(), Lo: rng.Uint64()}
		// Half the time, zero most low bits so near-equal prefixes occur.
		if rng.Intn(2) == 0 {
			shift := uint(rng.Intn(128))
			if shift >= 64 {
				c.Lo = 0
				c.Hi &= ^uint64(0) << (shift - 64)
			} else {
				c.Lo &= ^uint64(0) << shift
			}
		}
		return c
	}
	for trial := 0; trial < 20000; trial++ {
		a, b := randCode(), randCode()
		if rng.Intn(3) == 0 {
			b = a // force equality often
		}
		bits := 1 + rng.Intn(128)
		if got, want := a.prefixEqual(b, bits), prefixEqualRef(a, b, bits); got != want {
			t.Fatalf("prefixEqual(%v, %v, %d) = %v, want %v", a, b, bits, got, want)
		}
	}
}

func FuzzStringPrefixCode(f *testing.F) {
	f.Add("", "")
	f.Add("a", "b")
	f.Add("canon eos", "canon eo")
	f.Add("exactly16bytes!!", "exactly16bytes!!x")
	f.Add("\x00", "\x00\x00")
	f.Add("sixteen-byte-prefix-equal-A", "sixteen-byte-prefix-equal-B")
	coding := KeyCoding[string]{Encode: StringPrefixCode}
	f.Fuzz(func(t *testing.T, a, b string) {
		if err := coding.Verify(strings.Compare, nil, a, b); err != nil {
			t.Fatal(err)
		}
		// Differential against a byte-level reference: the code must
		// compare exactly like the zero-padded 16-byte prefixes.
		pad := func(s string) []byte {
			p := make([]byte, 16)
			copy(p, s)
			return p
		}
		ca, cb := StringPrefixCode(a), StringPrefixCode(b)
		if got, want := ca.Cmp(cb), sign(strings.Compare(string(pad(a)), string(pad(b)))); got != want {
			t.Fatalf("StringPrefixCode(%q).Cmp(StringPrefixCode(%q)) = %d, want %d (padded-prefix reference)",
				a, b, got, want)
		}
	})
}

// FuzzVerifyCatchesBrokenCoding turns Verify on a deliberately broken
// coding (little-endian single byte: not order-preserving) and checks
// it reports the violations the good codings must never produce.
func FuzzVerifyCatchesBrokenCoding(f *testing.F) {
	f.Add("ab", "ba")
	f.Add("a", "b")
	broken := KeyCoding[string]{
		Encode: func(s string) Code {
			var c Code
			for i := 0; i < len(s) && i < 8; i++ {
				c.Lo |= uint64(s[i]) << (8 * uint(i)) // little-endian: wrong
			}
			return c
		},
	}
	f.Fuzz(func(t *testing.T, a, b string) {
		err := broken.Verify(strings.Compare, nil, a, b)
		// Whenever the byte-reversed order disagrees with the string
		// order, Verify must flag it.
		ca, cb := broken.Encode(a), broken.Encode(b)
		if d := ca.Cmp(cb); d != 0 && d != sign(strings.Compare(a, b)) && err == nil {
			t.Fatalf("Verify missed an order violation on (%q, %q)", a, b)
		}
	})
}
