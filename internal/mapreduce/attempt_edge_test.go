package mapreduce_test

// Edge cases of the RetryPolicy contract that the main attempt tests
// leave implicit: a budget of exactly one attempt (fail-fast mode, no
// retry and no hidden extra attempts on the success path), the
// distinction between a per-attempt timeout (retryable) and run-context
// cancellation (terminal), and Fatal() short-circuiting one task's
// retry loop while sibling tasks of the same phase are still in flight.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapreduce"
	"repro/internal/testleak"
)

func TestMaxAttemptsOneFailsFast(t *testing.T) {
	for dname, dataflow := range allDataflows {
		t.Run(dname, func(t *testing.T) {
			before := testleak.Snapshot()
			var starts atomic.Int64
			e, _ := engineFor(t, dataflow)
			e.Retry.MaxAttempts = 1
			e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
				if phase == mapreduce.ReduceTask && task == 2 && point == mapreduce.FaultTaskStart {
					starts.Add(1)
					return errors.New("transient, but the budget is 1")
				}
				return nil
			}
			_, err := wordJob(4, false).Run(e, wordInput(2))
			if err == nil {
				t.Fatal("MaxAttempts=1 run with a failing task succeeded")
			}
			testleak.Check(t, before)
			var te *mapreduce.TaskError
			if !errors.As(err, &te) || te.Attempt != 1 {
				t.Fatalf("err = %v, want a first-attempt TaskError", err)
			}
			if n := starts.Load(); n != 1 {
				t.Fatalf("failing task started %d attempts under MaxAttempts=1, want exactly 1", n)
			}
		})
	}
}

func TestMaxAttemptsOneCleanRunCountsSingleAttempts(t *testing.T) {
	const m, r = 3, 4
	before := testleak.Snapshot()
	e := &mapreduce.Engine{Parallelism: 2}
	e.Retry.MaxAttempts = 1
	res, err := wordJob(r, false).Run(e, wordInput(m))
	if err != nil {
		t.Fatal(err)
	}
	testleak.Check(t, before)
	// Exactly one attempt per task: no retries and no speculative
	// launches may hide behind a fail-fast policy.
	if res.Attempts != m+r || res.Retries != 0 || res.SpeculativeLaunched != 0 {
		t.Fatalf("Attempts/Retries/SpeculativeLaunched = %d/%d/%d, want %d/0/0",
			res.Attempts, res.Retries, res.SpeculativeLaunched, m+r)
	}
}

// TestRunCancelIsTerminalNotRetried is the counterpart of
// TestTaskTimeoutRetries: an attempt killed by its per-attempt deadline
// is retried, but an attempt killed by the *run* context must fail the
// run immediately — retrying work the caller cancelled would be wrong
// twice over.
func TestRunCancelIsTerminalNotRetried(t *testing.T) {
	before := testleak.Snapshot()
	var starts atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	e := &mapreduce.Engine{Parallelism: 2}
	e.Retry.BaseBackoff = time.Microsecond
	e.FaultHook = func(hctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
		if phase == mapreduce.MapTask && task == 0 && point == mapreduce.FaultTaskStart {
			starts.Add(1)
			cancel() // cancel the run from inside the first attempt
			<-hctx.Done()
			return hctx.Err()
		}
		return nil
	}
	_, err := wordJob(3, false).RunContext(ctx, e, wordInput(2))
	cancel()
	testleak.Check(t, before)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := starts.Load(); n != 1 {
		t.Fatalf("cancelled task started %d attempts, want 1 (cancellation is terminal)", n)
	}
}

func TestFatalShortCircuitsWhileSiblingsInFlight(t *testing.T) {
	const m = 6
	before := testleak.Snapshot()
	var fatalStarts, siblingStarts atomic.Int64
	e := &mapreduce.Engine{Parallelism: 3}
	e.Retry.MaxAttempts = 5
	e.Retry.BaseBackoff = time.Microsecond
	e.FaultHook = func(ctx context.Context, phase mapreduce.TaskKind, task, attempt int, point mapreduce.FaultPoint) error {
		if phase != mapreduce.MapTask || point != mapreduce.FaultTaskStart {
			return nil
		}
		if task == 0 {
			fatalStarts.Add(1)
			return mapreduce.Fatal(errors.New("deterministic bug"))
		}
		// Keep the siblings demonstrably in flight when task 0 dies.
		siblingStarts.Add(1)
		tm := time.NewTimer(20 * time.Millisecond)
		defer tm.Stop()
		select {
		case <-tm.C:
		case <-ctx.Done():
		}
		return nil
	}
	_, err := wordJob(3, false).Run(e, wordInput(m))
	testleak.Check(t, before)
	var te *mapreduce.TaskError
	if !errors.As(err, &te) || te.Phase != mapreduce.MapTask || te.Task != 0 || te.Attempt != 1 {
		t.Fatalf("err = %v, want map task 0 failing on its first attempt", err)
	}
	if n := fatalStarts.Load(); n != 1 {
		t.Fatalf("fatal task started %d attempts with budget 5, want 1 (Fatal short-circuits)", n)
	}
	// The phase kept executing its other tasks; Fatal only stopped the
	// one task's retry loop.
	if n := siblingStarts.Load(); n < 1 {
		t.Fatal("no sibling task observed in flight")
	}
}
