package mapreduce

import (
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// This file checks the engine against a deliberately naive sequential
// reference implementation of the MapReduce model of Section II:
// map every record, bucket by part, sort each bucket by comp keeping
// map-task order for ties, group by group, reduce each group. Random
// jobs over random inputs must agree exactly.

// refRecord tags a map-output pair with its origin for the stable tie
// ordering.
type refRecord struct {
	kv      KeyValue
	mapTask int
	seq     int
}

// referenceRun is the naive model implementation.
func referenceRun(job *BoxedJob, input [][]KeyValue) []KeyValue {
	r := job.NumReduceTasks
	buckets := make([][]refRecord, r)
	for mi, part := range input {
		mapper := job.NewMapper()
		mapper.Configure(len(input), r, mi)
		ctx := &BoxedContext{metrics: &TaskMetrics{}}
		for _, kv := range part {
			mapper.Map(ctx, kv)
		}
		for seq, kv := range ctx.out {
			p := job.Partition(kv.Key, r)
			buckets[p] = append(buckets[p], refRecord{kv: kv, mapTask: mi, seq: seq})
		}
	}
	var out []KeyValue
	for ri := 0; ri < r; ri++ {
		b := buckets[ri]
		slices.SortStableFunc(b, func(x, y refRecord) int {
			if c := job.Compare(x.kv.Key, y.kv.Key); c != 0 {
				return c
			}
			if c := x.mapTask - y.mapTask; c != 0 {
				return c
			}
			return x.seq - y.seq
		})
		reducer := job.NewReducer()
		reducer.Configure(len(input), r, ri)
		ctx := &BoxedContext{metrics: &TaskMetrics{}}
		group := func(a, b any) int {
			if job.Group != nil {
				return job.Group(a, b)
			}
			return job.Compare(a, b)
		}
		for lo := 0; lo < len(b); {
			hi := lo + 1
			for hi < len(b) && group(b[lo].kv.Key, b[hi].kv.Key) == 0 {
				hi++
			}
			vals := make([]KeyValue, hi-lo)
			for i := lo; i < hi; i++ {
				vals[i-lo] = b[i].kv
			}
			reducer.Reduce(ctx, b[lo].kv.Key, vals)
			lo = hi
		}
		out = append(out, ctx.out...)
	}
	return out
}

// randomJob builds a job with composite integer keys whose partition,
// sort, and group functions exercise different key components.
func randomJob(rng *rand.Rand, r int) *BoxedJob {
	type ck struct{ a, b, c int }
	return &BoxedJob{
		Name:           "differential",
		NumReduceTasks: r,
		NewMapper: func() BoxedMapper {
			return &FuncMapper{
				OnMap: func(ctx *BoxedContext, kv KeyValue) {
					v := kv.Value.(int)
					// Deterministic fan-out of 1-3 records per input.
					n := v%3 + 1
					for i := 0; i < n; i++ {
						ctx.Emit(ck{a: v % 5, b: (v + i) % 7, c: v % 2}, v*10+i)
					}
				},
			}
		},
		NewReducer: func() BoxedReducer {
			return &FuncReducer{
				OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
					sum := 0
					for _, v := range values {
						sum += v.Value.(int)
					}
					ctx.Emit(key, fmt.Sprintf("n=%d sum=%d", len(values), sum))
				},
			}
		},
		Partition: func(key any, r int) int { return key.(ck).a % r },
		Compare: func(x, y any) int {
			kx, ky := x.(ck), y.(ck)
			if c := CompareInts(kx.a, ky.a); c != 0 {
				return c
			}
			if c := CompareInts(kx.b, ky.b); c != 0 {
				return c
			}
			return CompareInts(kx.c, ky.c)
		},
		// Group on (a, b) only: coarser than the sort.
		Group: func(x, y any) int {
			kx, ky := x.(ck), y.(ck)
			if c := CompareInts(kx.a, ky.a); c != 0 {
				return c
			}
			return CompareInts(kx.b, ky.b)
		},
	}
}

func TestEngineAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	for trial := 0; trial < 40; trial++ {
		m := rng.Intn(5) + 1
		r := rng.Intn(6) + 1
		input := make([][]KeyValue, m)
		for i := range input {
			n := rng.Intn(30)
			input[i] = make([]KeyValue, n)
			for j := range input[i] {
				input[i][j] = KeyValue{Value: rng.Intn(100)}
			}
		}
		job := randomJob(rng, r)
		want := referenceRun(job, input)
		for _, par := range []int{1, 4} {
			got, err := (&Engine{Parallelism: par}).Run(job, input)
			if err != nil {
				t.Fatalf("trial %d (par=%d): %v", trial, par, err)
			}
			if !reflect.DeepEqual(got.Output, nonEmpty(want)) && !reflect.DeepEqual(nonEmpty(got.Output), nonEmpty(want)) {
				t.Fatalf("trial %d (m=%d r=%d par=%d): engine output diverges from the reference model\nengine:    %v\nreference: %v",
					trial, m, r, par, got.Output, want)
			}
			// The streaming k-way merge must produce a BoxedResult that is
			// byte-identical — output, side output, and every TaskMetrics
			// field — to the concat+stable-sort oracle path.
			oracle, err := (&Engine{Parallelism: par, Shuffle: ShuffleConcatSort}).Run(job, input)
			if err != nil {
				t.Fatalf("trial %d (par=%d, oracle): %v", trial, par, err)
			}
			if !reflect.DeepEqual(got, oracle) {
				t.Fatalf("trial %d (m=%d r=%d par=%d): k-way merge BoxedResult diverges from concat+sort oracle\nmerge:  %+v\noracle: %+v",
					trial, m, r, par, got, oracle)
			}
		}
	}
}

// TestShuffleModesAgreeOnCombinerJobs covers the combiner path (shared
// map side, both reduce paths) against the oracle as well.
func TestShuffleModesAgreeOnCombinerJobs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		m := rng.Intn(4) + 1
		r := rng.Intn(5) + 1
		input := make([][]KeyValue, m)
		for i := range input {
			n := rng.Intn(40)
			input[i] = make([]KeyValue, n)
			for j := range input[i] {
				input[i][j] = KeyValue{Value: rng.Intn(60)}
			}
		}
		job := randomJob(rng, r)
		job.NewCombiner = func() BoxedReducer {
			return &FuncReducer{
				OnReduce: func(ctx *BoxedContext, key any, values []KeyValue) {
					// Re-emit each value under its own key: a pass-through
					// combiner that still exercises the grouping machinery.
					for _, v := range values {
						ctx.Emit(v.Key, v.Value)
					}
				},
			}
		}
		merge, err := (&Engine{Parallelism: 2}).Run(job, input)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		oracle, err := (&Engine{Parallelism: 2, Shuffle: ShuffleConcatSort}).Run(job, input)
		if err != nil {
			t.Fatalf("trial %d (oracle): %v", trial, err)
		}
		if !reflect.DeepEqual(merge, oracle) {
			t.Fatalf("trial %d (m=%d r=%d): combiner job BoxedResult diverges between shuffle modes", trial, m, r)
		}
	}
}

func nonEmpty(kvs []KeyValue) []KeyValue {
	if kvs == nil {
		return []KeyValue{}
	}
	return kvs
}
