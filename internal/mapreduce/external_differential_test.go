package mapreduce_test

// External-dataflow differential test: every strategy of the paper must
// produce byte-identical Results on the out-of-core engine (disk-backed
// spill runs + external merge) and on the in-memory typed engine, with
// budgets tiny enough that every map task flushes several runs. The
// comparison covers the complete Result — match pairs, comparison
// counts, raw job outputs, side outputs, and every TaskMetrics field
// except the external-only spill counters — across Basic/BlockSplit/
// PairRange × 1..4 map partitions × 1..8 reduce tasks (combiner on) and
// both dual-source strategies, each with sequential and concurrent
// execution. This is the proof that moving the shuffle to disk changed
// the residency of the intermediate records and nothing else.

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/bdm"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
)

// tinySpillBudget forces a spill roughly every record or two: the
// smallest strategy-job map task in the matrix below emits ≥ 17 records
// of ≥ 25 encoded bytes, so every map task writes ≥ 4 runs (asserted).
const tinySpillBudget = 64

// assertSpilled checks every map task flushed at least minRuns runs.
func assertSpilled(t *testing.T, name string, ms []mapreduce.TaskMetrics, minRuns int64) {
	t.Helper()
	for i := range ms {
		if ms[i].SpillRuns < minRuns {
			t.Errorf("%s: map task %d spilled %d runs, want >= %d", name, i, ms[i].SpillRuns, minRuns)
		}
		if ms[i].SpillRuns > 0 && ms[i].SpillBytesWritten == 0 {
			t.Errorf("%s: map task %d has runs but no bytes written", name, i)
		}
	}
}

// clearResultSpillCounters zeroes the spill counters of a job result so
// the remainder compares byte-for-byte against the in-memory engine.
func clearResultSpillCounters(m *mapreduce.Metrics) {
	clearSpillCounters(m.MapMetrics)
	clearSpillCounters(m.ReduceMetrics)
}

func TestExternalDifferentialStrategies(t *testing.T) {
	es := skewedEntities()
	strategies := []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}}
	tmp := t.TempDir()
	for m := 1; m <= 4; m++ {
		parts := entity.SplitRoundRobin(es, m)
		for r := 1; r <= 8; r++ {
			for _, strat := range strategies {
				for _, par := range []int{1, 4} {
					name := fmt.Sprintf("%s/m=%d/r=%d/par=%d", strat.Name(), m, r, par)
					cfg := er.Config{
						Strategy:    strat,
						Attr:        "title",
						BlockKey:    blocking.NormalizedPrefix(3),
						Matcher:     titleMatcher(0.85),
						R:           r,
						UseCombiner: true,
					}

					cfg.Engine = &mapreduce.Engine{Parallelism: par}
					typed, err := er.Run(parts, cfg)
					if err != nil {
						t.Fatalf("%s: typed run: %v", name, err)
					}

					cfg.Engine = &mapreduce.Engine{
						Parallelism: par,
						Dataflow:    mapreduce.DataflowExternal,
						SpillBudget: tinySpillBudget,
						TmpDir:      tmp,
					}
					ext, err := er.Run(parts, cfg)
					if err != nil {
						t.Fatalf("%s: external run: %v", name, err)
					}

					assertSpilled(t, name+"/match", ext.MatchResult.MapMetrics, 4)
					if ext.BDMResult != nil {
						assertSpilled(t, name+"/bdm", ext.BDMResult.MapMetrics, 4)
						clearResultSpillCounters(&ext.BDMResult.Metrics)
					}
					clearResultSpillCounters(&ext.MatchResult.Metrics)

					if !reflect.DeepEqual(typed.Matches, ext.Matches) {
						t.Errorf("%s: match pairs diverge between dataflows", name)
					}
					if typed.Comparisons != ext.Comparisons {
						t.Errorf("%s: comparisons %d (typed) != %d (external)", name, typed.Comparisons, ext.Comparisons)
					}
					if !reflect.DeepEqual(typed.BDMResult, ext.BDMResult) {
						t.Errorf("%s: BDM job Result (incl. TaskMetrics) diverges between dataflows", name)
					}
					if !reflect.DeepEqual(typed.MatchResult, ext.MatchResult) {
						t.Errorf("%s: match job Result (incl. TaskMetrics) diverges between dataflows", name)
					}
				}
			}
		}
	}
	// Every Run removed its spill directory.
	if ents, err := os.ReadDir(tmp); err != nil || len(ents) != 0 {
		t.Fatalf("spill temp dir not empty after runs: %v (err %v)", ents, err)
	}
}

func TestExternalDifferentialDualStrategies(t *testing.T) {
	esR, esS := dualCatalog()
	strategies := []core.DualStrategy{core.BlockSplitDual{}, core.PairRangeDual{}}
	tmp := t.TempDir()
	for mR := 1; mR <= 2; mR++ {
		partsR := entity.SplitRoundRobin(esR, mR)
		for mS := 1; mS <= 2; mS++ {
			partsS := entity.SplitRoundRobin(esS, mS)
			for r := 1; r <= 8; r++ {
				for _, strat := range strategies {
					for _, par := range []int{1, 4} {
						name := fmt.Sprintf("%s/mR=%d/mS=%d/r=%d/par=%d", strat.Name(), mR, mS, r, par)
						cfg := er.DualConfig{
							Strategy: strat,
							Attr:     "title",
							BlockKey: blocking.NormalizedPrefix(3),
							Matcher:  titleMatcher(0.85),
							R:        r,
						}

						cfg.Engine = &mapreduce.Engine{Parallelism: par}
						typed, err := er.RunDual(partsR, partsS, cfg)
						if err != nil {
							t.Fatalf("%s: typed run: %v", name, err)
						}

						cfg.Engine = &mapreduce.Engine{
							Parallelism: par,
							Dataflow:    mapreduce.DataflowExternal,
							SpillBudget: tinySpillBudget,
							TmpDir:      tmp,
						}
						ext, err := er.RunDual(partsR, partsS, cfg)
						if err != nil {
							t.Fatalf("%s: external run: %v", name, err)
						}

						assertSpilled(t, name, ext.MatchResult.MapMetrics, 4)
						clearResultSpillCounters(&ext.MatchResult.Metrics)

						if !reflect.DeepEqual(typed.Matches, ext.Matches) {
							t.Errorf("%s: match pairs diverge between dataflows", name)
						}
						if typed.Comparisons != ext.Comparisons {
							t.Errorf("%s: comparisons %d (typed) != %d (external)", name, typed.Comparisons, ext.Comparisons)
						}
						if !reflect.DeepEqual(typed.MatchResult, ext.MatchResult) {
							t.Errorf("%s: match job Result (incl. TaskMetrics) diverges between dataflows", name)
						}
					}
				}
			}
		}
	}
	if ents, err := os.ReadDir(tmp); err != nil || len(ents) != 0 {
		t.Fatalf("spill temp dir not empty after runs: %v (err %v)", ents, err)
	}
}

// TestExternalDifferentialSideOutput pins the side-output path (the BDM
// job's annotated entities, which never spill) to byte equality.
func TestExternalDifferentialSideOutput(t *testing.T) {
	parts := entity.SplitRoundRobin(skewedEntities(), 3)
	job := bdm.Job(bdm.JobOptions{
		Attr:           "title",
		KeyFunc:        blocking.NormalizedPrefix(3),
		NumReduceTasks: 4,
		UseCombiner:    true,
	})
	input := make([][]bdm.Annotated, len(parts))
	for i, p := range parts {
		input[i] = make([]bdm.Annotated, len(p))
		for k, e := range p {
			input[i][k] = bdm.Annotated{Value: e}
		}
	}
	typed, err := job.Run(&mapreduce.Engine{Parallelism: 2}, input)
	if err != nil {
		t.Fatalf("typed run: %v", err)
	}
	ext, err := job.Run(&mapreduce.Engine{
		Parallelism: 2,
		Dataflow:    mapreduce.DataflowExternal,
		SpillBudget: tinySpillBudget,
		TmpDir:      t.TempDir(),
	}, input)
	if err != nil {
		t.Fatalf("external run: %v", err)
	}
	assertSpilled(t, "bdm", ext.MapMetrics, 4)
	clearResultSpillCounters(&ext.Metrics)
	if !reflect.DeepEqual(typed, ext) {
		t.Errorf("BDM job Result (incl. SideOutput) diverges between dataflows\ntyped: %+v\nexternal: %+v", typed, ext)
	}
}
