package mapreduce

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/runio"
)

// This file is the engine's distributed-execution seam: the fourth
// dispatch mode, selected by Engine.Remote. The master-side driver
// (runRemote) runs the same task-attempt supervision as the local
// dataflows — every remote task is one run/commit/discard sequence under
// the RetryPolicy, so retries, backoff, speculation, and the task-commit
// protocol apply unchanged to tasks that execute in another process.
// The worker side re-runs the typed in-memory attempt verbatim
// (RemoteRunnable wraps a concrete Job) and materializes map output as a
// single sorted ERN1 run file, which makes the reduce phase a uniform
// segment merge — exactly the external dataflow's reduce discipline —
// so distributed results inherit the external≡typed byte-identity
// proof. See DESIGN.md ("Distributed runtime").
//
// Division of labor with internal/dist: this file defines the
// process-agnostic contract (dispatcher interface, wire-free executor
// entry points, record blobs); dist implements the HTTP control plane,
// worker registry, heartbeats, and run serving on top of it.

// ErrNoWorkers is returned by a RemoteDispatcher when no live worker is
// available to run an attempt. The driver reacts by degrading that
// attempt to local execution with a logged warning instead of failing
// the job — the bottom rung of the degradation ladder.
var ErrNoWorkers = errors.New("mapreduce: no live workers")

// RemoteMapResult is a completed remote map attempt as the driver sees
// it: the run's segment index (Path pointing at the master-local
// replica the dispatcher fetched), the worker URL the run can also be
// range-read from, and the attempt's side output as a record blob.
type RemoteMapResult struct {
	// Info describes the attempt's ERN1 run file; Info.Path must name a
	// file readable by this process (the dispatcher's replica).
	Info *runio.Info
	// Origin is the worker's run-serving URL ("" when the run only
	// exists locally). Reducers prefer it and fall back to the replica.
	Origin string
	// Side is the attempt's side output, SideCount records encoded with
	// the job's input codec (see EncodeRecords).
	Side      []byte
	SideCount int
	Metrics   TaskMetrics
}

// RemoteReduceResult is a completed remote reduce attempt: the emitted
// output as a record blob plus the attempt's metrics.
type RemoteReduceResult struct {
	Output      []byte
	OutputCount int
	Metrics     TaskMetrics
}

// RemoteRun locates one committed map task's run for the reduce phase.
type RemoteRun struct {
	MapTask int
	// Path is the master-local replica file.
	Path string
	// Origin is the worker's run URL ("" when the run was produced by
	// local degradation and only the replica exists).
	Origin string
	Info   *runio.Info
}

// RemoteDispatcher executes task attempts on remote workers. The engine
// calls it once per attempt from supervised task goroutines; it must be
// safe for concurrent use. Error contract:
//
//   - ErrNoWorkers (wrapped or not) makes the driver run the attempt
//     locally with a logged warning;
//   - an error wrapped with Fatal fails the task immediately;
//   - any other error fails only the attempt, and the RetryPolicy
//     decides on re-dispatch (typically landing on another worker).
type RemoteDispatcher interface {
	// RunMapAttempt dispatches one map attempt: input is inputCount
	// records encoded with the job's input codec. On success the
	// attempt's run file must be readable at replicaPath.
	RunMapAttempt(ctx context.Context, m, task, attempt int, input []byte, inputCount int, replicaPath string) (*RemoteMapResult, error)
	// RunReduceAttempt dispatches one reduce attempt over the committed
	// map runs (indexed by map task, all m present).
	RunReduceAttempt(ctx context.Context, m, task, attempt int, runs []RemoteRun) (*RemoteReduceResult, error)
}

// SegmentSource locates one map task's segment of one sorted run for a
// remote reduce attempt. R typically wraps an open file or an HTTP
// range reader; runio.SegmentReader bounds every read to Seg.
type SegmentSource struct {
	R    io.ReaderAt
	Seg  runio.Segment
	Path string // names the run in corruption errors
}

// RemoteRunnable is the type-erased worker-side face of a typed Job:
// it executes single attempts from encoded inputs, so a worker process
// can run jobs whose concrete type parameters it does not know
// (internal/dist builds them through registered constructors).
type RemoteRunnable interface {
	JobName() string
	// ExecRemoteMap runs one typed map attempt over the decoded input
	// blob and writes the attempt's entire sorted output as one ERN1 run
	// at runPath. The result's Origin is left empty — serving is the
	// caller's concern.
	ExecRemoteMap(ctx context.Context, m, task, attempt int, input []byte, inputCount int, runPath string) (*RemoteMapResult, error)
	// ExecRemoteReduce runs one typed reduce attempt over the map tasks'
	// run segments, given in map-task order (zero-record segments may be
	// included; they contribute nothing).
	ExecRemoteReduce(ctx context.Context, m, task, attempt int, sources []SegmentSource) (*RemoteReduceResult, error)
}

// NewRemoteRunnable wraps a typed job for worker-side execution. It
// fails when any of the job's four record types lacks a runio codec —
// the same requirement the external dataflow has for K and V, extended
// to I and O because inputs and outputs cross the process boundary.
func NewRemoteRunnable[I, K, V, O any](j *Job[I, K, V, O]) (RemoteRunnable, error) {
	ic, ok := runio.Lookup[I]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for input type %T", j.Name, *new(I))
	}
	kc, ok := runio.Lookup[K]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for key type %T", j.Name, *new(K))
	}
	vc, ok := runio.Lookup[V]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for value type %T", j.Name, *new(V))
	}
	oc, ok := runio.Lookup[O]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for output type %T", j.Name, *new(O))
	}
	rr := &remoteRunnable[I, K, V, O]{j: j, st: newRunState(j), ic: ic, kc: kc, vc: vc, oc: oc}
	if rr.st.encode != nil {
		rr.codeWidth = 16
	}
	return rr, nil
}

type remoteRunnable[I, K, V, O any] struct {
	j         *Job[I, K, V, O]
	st        *runState[I, K, V, O]
	ic        runio.Codec[I]
	kc        runio.Codec[K]
	vc        runio.Codec[V]
	oc        runio.Codec[O]
	codeWidth int
}

func (rr *remoteRunnable[I, K, V, O]) JobName() string { return rr.j.Name }

func (rr *remoteRunnable[I, K, V, O]) ExecRemoteMap(ctx context.Context, m, task, attempt int, input []byte, inputCount int, runPath string) (*RemoteMapResult, error) {
	if err := rr.j.validate(m); err != nil {
		return nil, Fatal(err)
	}
	recs, err := DecodeRecords(rr.ic, input, inputCount)
	if err != nil {
		return nil, fmt.Errorf("map task %d input: %w", task, err)
	}
	return rr.st.execMapToRun(ctx, nil, task, m, recs, rr.ic, rr.kc, rr.vc, rr.codeWidth, runPath)
}

func (rr *remoteRunnable[I, K, V, O]) ExecRemoteReduce(ctx context.Context, m, task, attempt int, sources []SegmentSource) (*RemoteReduceResult, error) {
	if err := rr.j.validate(m); err != nil {
		return nil, Fatal(err)
	}
	dec := &recDecoder[K, V]{kc: rr.kc, vc: rr.vc, codeWidth: rr.codeWidth}
	rout, err := rr.st.runReduceAttemptSegments(ctx, nil, task, m, sources, dec)
	if err != nil {
		return nil, err
	}
	blob := EncodeRecords(rr.oc, rout.out)
	res := &RemoteReduceResult{Output: blob, OutputCount: len(rout.out), Metrics: rout.metrics}
	putOutBuf(rr.st.outPool, rout.out)
	return res, nil
}

// execMapToRun runs one in-memory typed map attempt and writes its
// bucketed, sorted output as a single ERN1 run file — the shared
// implementation of the worker-side executor and the master's local
// degradation path. The run counters it sets (one run, its file bytes)
// are execution history, outside the differential contract.
func (st *runState[I, K, V, O]) execMapToRun(actx context.Context, hook *taskHook, task, m int, input []I, ic runio.Codec[I], kc runio.Codec[K], vc runio.Codec[V], codeWidth int, runPath string) (*RemoteMapResult, error) {
	mout, err := st.runMapAttempt(actx, hook, task, m, input)
	if err != nil {
		st.pools.putRecBuf(mout.flat)
		return nil, err
	}
	info, err := writeRun(runPath, mout.buckets, kc, vc, codeWidth)
	st.pools.putRecBuf(mout.flat)
	if err != nil {
		return nil, err
	}
	mout.metrics.SpillRuns++
	mout.metrics.SpillBytesWritten += info.FileBytes
	return &RemoteMapResult{
		Info:      info,
		Side:      EncodeRecords(ic, mout.side),
		SideCount: len(mout.side),
		Metrics:   mout.metrics,
	}, nil
}

// writeRun persists one map attempt's bucketed output as a sorted ERN1
// run (one segment per reduce partition, records encoded like the
// external dataflow's spill files: code ‖ key ‖ value).
func writeRun[K, V any](path string, buckets [][]Rec[K, V], kc runio.Codec[K], vc runio.Codec[V], codeWidth int) (*runio.Info, error) {
	w, err := runio.Create(path, len(buckets), codeWidth)
	if err != nil {
		return nil, err
	}
	var buf []byte
	for p, b := range buckets {
		for i := range b {
			buf = buf[:0]
			if codeWidth != 0 {
				buf = binary.LittleEndian.AppendUint64(buf, b[i].code.Hi)
				buf = binary.LittleEndian.AppendUint64(buf, b[i].code.Lo)
			}
			buf = kc.Append(buf, b[i].Key)
			buf = vc.Append(buf, b[i].Value)
			if err := w.Append(p, buf); err != nil {
				w.Abort()
				os.Remove(path)
				return nil, err
			}
		}
	}
	info, err := w.Finish()
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return info, nil
}

// runReduceAttemptSegments is the segment-merge reduce attempt shared
// by the worker executor and the master's local degradation path: the
// external dataflow's reduce discipline over one sorted run segment per
// map task. Source order is the merge tiebreak, so callers must pass
// segments in map-task order — that reproduces the typed engine's
// map-task stability exactly (one run per task, no tail).
func (st *runState[I, K, V, O]) runReduceAttemptSegments(actx context.Context, hook *taskHook, idx, m int, srcs []SegmentSource, dec *recDecoder[K, V]) (rout typedReduceOut[O], err error) {
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return rout, err
	}
	j := st.job
	metrics := &rout.metrics
	ctx := &ReduceContext[O]{metrics: metrics, out: getOutBuf[O](st.outPool), hook: hook}
	reducer := j.NewReducer()
	reducer.Configure(m, j.NumReduceTasks, idx)

	sources := make([]mergeSource[K, V], 0, len(srcs))
	var total int64
	for _, s := range srcs {
		if s.Seg.Records == 0 {
			continue
		}
		sources = append(sources, &segSource[K, V]{
			sr:   runio.NewSegmentReader(s.R, s.Seg, s.Path),
			dec:  dec,
			part: int32(idx),
		})
		total += s.Seg.Records
		metrics.SpillBytesRead += s.Seg.Len
	}
	metrics.InputRecords = total

	if err := hook.fire(FaultMerge); err != nil {
		return rout, err
	}
	mg, err := newExtMerger(st, sources)
	if err != nil {
		return rout, err
	}
	group := st.pools.getRecBuf()
	check := actx.Done() != nil
	for n := 0; ; n++ {
		if check && n&cancelCheckMask == 0 && actx.Err() != nil {
			return rout, actx.Err()
		}
		rec, _, ok, err := mg.next()
		if err != nil {
			return rout, err
		}
		if !ok {
			break
		}
		if len(group) > 0 && !st.sameGroup(&group[0], &rec) {
			st.emitGroup(ctx, reducer, group)
			group = group[:0]
		}
		group = append(group, rec)
	}
	if len(group) > 0 {
		st.emitGroup(ctx, reducer, group)
	}
	st.pools.putRecBuf(group)
	rout.out = ctx.out
	return rout, nil
}

// remoteMapOut is one distributed map attempt's private output.
type remoteMapOut[I any] struct {
	run     RemoteRun
	side    []I
	metrics TaskMetrics
}

// runRemote is the master-side driver of distributed execution (the job
// is already validated by Job.run, which dispatches here when
// Engine.Remote is set). Map and reduce attempts go through the
// dispatcher; the supervisor's retry loop is the reassignment machinery
// (a dead worker's dispatch error is just a failed attempt), and
// committed runs are never recomputed — the replica the dispatcher
// fetched at map commit outlives the worker that produced it. When the
// dispatcher reports ErrNoWorkers, the attempt degrades to local
// execution with a logged warning.
func (j *Job[I, K, V, O]) runRemote(ctx context.Context, e *Engine, input [][]I, sink *outputSink[O]) (*Result[I, O], error) {
	m := len(input)
	ic, ok := runio.Lookup[I]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for input type %T", j.Name, *new(I))
	}
	kc, ok := runio.Lookup[K]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for key type %T", j.Name, *new(K))
	}
	vc, ok := runio.Lookup[V]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for value type %T", j.Name, *new(V))
	}
	oc, ok := runio.Lookup[O]()
	if !ok {
		return nil, fmt.Errorf("mapreduce: job %q: remote execution: no runio codec registered for output type %T", j.Name, *new(O))
	}
	if e.TmpDir != "" {
		if err := os.MkdirAll(e.TmpDir, 0o755); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: create tmp dir: %w", j.Name, err)
		}
	}
	dir, err := os.MkdirTemp(e.TmpDir, "mr-dist-*")
	if err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: create replica dir: %w", j.Name, err)
	}
	// The replica directory dies with this run on every exit path.
	defer os.RemoveAll(dir)

	// The degradation warning fires once per job, not once per task —
	// an empty pool would otherwise log m+r near-identical lines.
	var degradeOnce sync.Once
	logDegraded := func() {
		degradeOnce.Do(func() {
			e.logger().Warn("no live workers; degrading to local execution", "job", j.Name)
			if o := e.Obs; o != nil {
				o.Engine.Degraded.Inc()
			}
		})
	}

	jobID := e.beginJob(j.Name)
	defer e.endJob(jobID)

	st := newRunState(j)
	st.obs, st.jobID = e.Obs, jobID
	codeWidth := 0
	if st.encode != nil {
		codeWidth = 16
	}
	dec := &recDecoder[K, V]{kc: kc, vc: vc, codeWidth: codeWidth}

	r := j.NumReduceTasks
	res := &Result[I, O]{
		Metrics: Metrics{
			JobName:       j.Name,
			MapMetrics:    make([]TaskMetrics, m),
			ReduceMetrics: make([]TaskMetrics, r),
		},
		SideOutput: make([][]I, m),
	}

	// ---- Map phase (remote dispatch, run replication) ----
	runs := make([]RemoteRun, m)
	mstats, merr := superviseTasks(ctx, e, MapTask, jobID, m,
		func(actx context.Context, hook *taskHook, task, attempt int) (remoteMapOut[I], error) {
			var out remoteMapOut[I]
			path := filepath.Join(dir, fmt.Sprintf("m%04d-a%03d.run", task, attempt))
			rm, err := e.Remote.RunMapAttempt(actx, m, task, attempt, EncodeRecords(ic, input[task]), len(input[task]), path)
			if err != nil {
				if !errors.Is(err, ErrNoWorkers) {
					return out, err
				}
				// Degradation ladder, bottom rung: no live worker — run
				// the attempt in-process so the job still completes.
				logDegraded()
				rm, err = st.execMapToRun(actx, hook, task, m, input[task], ic, kc, vc, codeWidth, path)
				if err != nil {
					return out, err
				}
				out.side = DecodeSlice(ic, rm.Side, rm.SideCount) // round-trip even locally: one code path
				out.run = RemoteRun{MapTask: task, Path: path, Info: rm.Info}
				out.metrics = rm.Metrics
				return out, nil
			}
			side, derr := DecodeRecords(ic, rm.Side, rm.SideCount)
			if derr != nil {
				os.Remove(path)
				return out, fmt.Errorf("map task %d: decode side output: %w", task, derr)
			}
			info := rm.Info
			info.Path = path
			out.run = RemoteRun{MapTask: task, Path: path, Origin: rm.Origin, Info: info}
			out.side = side
			out.metrics = rm.Metrics
			return out, nil
		},
		func(task int, out remoteMapOut[I]) error {
			out.metrics.Kind = MapTask
			out.metrics.Index = task
			res.MapMetrics[task] = out.metrics
			res.SideOutput[task] = out.side
			runs[task] = out.run
			return nil
		},
		func(out remoteMapOut[I]) {
			if out.run.Path != "" {
				os.Remove(out.run.Path)
			}
		},
	)
	res.addStats(mstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if merr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, merr)
	}
	for i := range res.MapMetrics {
		res.MapOutputRecords += res.MapMetrics[i].OutputRecords
	}

	// ---- Reduce phase (remote dispatch over committed runs) ----
	reduceOut := make([][]O, r)
	rstats, rerr := superviseTasks(ctx, e, ReduceTask, jobID, r,
		func(actx context.Context, hook *taskHook, task, attempt int) (typedReduceOut[O], error) {
			var rout typedReduceOut[O]
			rr, err := e.Remote.RunReduceAttempt(actx, m, task, attempt, runs)
			if err != nil {
				if !errors.Is(err, ErrNoWorkers) {
					return rout, err
				}
				logDegraded()
				return st.runReduceSegmentsLocal(actx, hook, task, m, runs, dec)
			}
			out := getOutBuf[O](st.outPool)
			out, derr := DecodeRecordsInto(oc, rr.Output, rr.OutputCount, out)
			if derr != nil {
				putOutBuf(st.outPool, out)
				return rout, fmt.Errorf("reduce task %d: decode output: %w", task, derr)
			}
			rout.out = out
			rout.metrics = rr.Metrics
			return rout, nil
		},
		func(task int, out typedReduceOut[O]) error {
			out.metrics.Kind = ReduceTask
			out.metrics.Index = task
			res.ReduceMetrics[task] = out.metrics
			if sink != nil {
				sink.writeAll(out.out)
				putOutBuf(st.outPool, out.out)
				return nil
			}
			reduceOut[task] = out.out
			return nil
		},
		func(out typedReduceOut[O]) { putOutBuf(st.outPool, out.out) },
	)
	res.addStats(rstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, err)
	}
	if rerr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", j.Name, rerr)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: output sink: %w", j.Name, err)
		}
	}
	var total int
	for jj := range reduceOut {
		total += len(reduceOut[jj])
	}
	res.Output = make([]O, 0, total)
	for jj := range reduceOut {
		res.Output = append(res.Output, reduceOut[jj]...)
		putOutBuf(st.outPool, reduceOut[jj])
	}
	return res, nil
}

// runReduceSegmentsLocal is the reduce-side degradation path: open each
// committed run's master-local replica and merge the task's segments
// in-process.
func (st *runState[I, K, V, O]) runReduceSegmentsLocal(actx context.Context, hook *taskHook, task, m int, runs []RemoteRun, dec *recDecoder[K, V]) (rout typedReduceOut[O], err error) {
	srcs := make([]SegmentSource, 0, m)
	files := make([]*os.File, 0, m)
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for mi := 0; mi < m; mi++ {
		run := runs[mi]
		if run.Info == nil || run.Info.Segments[task].Records == 0 {
			continue
		}
		f, oerr := os.Open(run.Path)
		if oerr != nil {
			return rout, fmt.Errorf("open run replica: %w", oerr)
		}
		files = append(files, f)
		srcs = append(srcs, SegmentSource{R: f, Seg: run.Info.Segments[task], Path: run.Path})
	}
	return st.runReduceAttemptSegments(actx, hook, task, m, srcs, dec)
}

// EncodeRecords concatenates the codec encodings of recs into one blob
// (nil for an empty slice) — the record-blob convention remote inputs,
// side outputs, and reduce outputs cross process boundaries in.
func EncodeRecords[T any](c runio.Codec[T], recs []T) []byte {
	var b []byte
	for i := range recs {
		b = c.Append(b, recs[i])
	}
	return b
}

// DecodeRecords decodes a record blob produced by EncodeRecords. A
// zero-count blob decodes to nil, so side output round-trips its
// nil-ness (the differential suite compares with reflect.DeepEqual).
func DecodeRecords[T any](c runio.Codec[T], b []byte, count int) ([]T, error) {
	if count == 0 {
		if len(b) != 0 {
			return nil, fmt.Errorf("%w: %d blob bytes but 0 records", runio.ErrCorrupt, len(b))
		}
		return nil, nil
	}
	return DecodeRecordsInto(c, b, count, make([]T, 0, count))
}

// DecodeRecordsInto is DecodeRecords appending into a caller-provided
// buffer.
func DecodeRecordsInto[T any](c runio.Codec[T], b []byte, count int, dst []T) ([]T, error) {
	for i := 0; i < count; i++ {
		v, n, err := c.Decode(b)
		if err != nil {
			return dst, fmt.Errorf("record %d of %d: %w", i, count, err)
		}
		b = b[n:]
		dst = append(dst, v)
	}
	if len(b) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes after %d records", runio.ErrCorrupt, len(b), count)
	}
	return dst, nil
}

// DecodeSlice is DecodeRecords for blobs this process just encoded —
// decoding cannot fail, so errors panic (an engine invariant, not an
// input condition).
func DecodeSlice[T any](c runio.Codec[T], b []byte, count int) []T {
	recs, err := DecodeRecords(c, b, count)
	if err != nil {
		panic(fmt.Sprintf("mapreduce: round-trip decode of locally encoded records failed: %v", err))
	}
	return recs
}

// IsFatal reports whether err is marked Fatal (non-retryable). The dist
// worker uses it to preserve fatality across the wire: a fatal task
// error is re-wrapped with Fatal on the master side.
func IsFatal(err error) bool { return isFatal(err) }

// IsCorrupt reports whether err stems from structural corruption of a
// run file or record blob (runio.ErrCorrupt). Corruption of a served
// segment is surfaced structurally over the wire so the master can
// distinguish a bad replica from a flaky worker.
func IsCorrupt(err error) bool { return errors.Is(err, runio.ErrCorrupt) }

// PairCodec is the runio codec of Pair[K, V] given codecs for both
// halves — the input/output record shapes of pipeline jobs are Pairs,
// and distributed execution needs them encodable (RegisterPairCodec).
type PairCodec[K, V any] struct {
	KC runio.Codec[K]
	VC runio.Codec[V]
}

// Append implements runio.Codec.
func (c PairCodec[K, V]) Append(dst []byte, p Pair[K, V]) []byte {
	dst = c.KC.Append(dst, p.Key)
	return c.VC.Append(dst, p.Value)
}

// Decode implements runio.Codec.
func (c PairCodec[K, V]) Decode(src []byte) (Pair[K, V], int, error) {
	var p Pair[K, V]
	k, n, err := c.KC.Decode(src)
	if err != nil {
		return p, 0, fmt.Errorf("pair key: %w", err)
	}
	v, n2, err := c.VC.Decode(src[n:])
	if err != nil {
		return p, 0, fmt.Errorf("pair value: %w", err)
	}
	p.Key, p.Value = k, v
	return p, n + n2, nil
}

// RegisterPairCodec registers a codec for Pair[K, V] built from the
// registered codecs of K and V. It panics when either half is missing,
// like a direct runio.Register of an unregistrable codec would at
// first use.
func RegisterPairCodec[K, V any]() {
	kc, ok := runio.Lookup[K]()
	if !ok {
		panic(fmt.Sprintf("mapreduce: RegisterPairCodec: no runio codec for key type %T", *new(K)))
	}
	vc, ok := runio.Lookup[V]()
	if !ok {
		panic(fmt.Sprintf("mapreduce: RegisterPairCodec: no runio codec for value type %T", *new(V)))
	}
	runio.Register[Pair[K, V]](PairCodec[K, V]{KC: kc, VC: vc})
}
