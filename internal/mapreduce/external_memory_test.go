package mapreduce_test

// Memory-residency test of the external dataflow: a job whose map
// output (≈48 MB, unshared with the input) is ~50× the spill budget
// must complete with a peak heap far below the typed in-memory engine's
// — the out-of-core promise. The bound is asserted as a ratio (external
// peak < half the typed peak) plus an absolute sanity floor on the
// typed side, which keeps the test robust to GC timing while still
// failing if spilling ever stops relieving memory.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mapreduce"
)

const (
	memRecordsPerTask = 40_000
	memValuePad       = 280 // bytes per synthetic value
	memSpillBudget    = 1 << 20
)

// syntheticBlowupJob emits memRecordsPerTask ~300-byte records per map
// task from a tiny input — map output dwarfs both input and reduce
// output, isolating shuffle residency.
func syntheticBlowupJob(r int) *mapreduce.Job[int, string, string, int] {
	pad := strings.Repeat("x", memValuePad)
	return &mapreduce.Job[int, string, string, int]{
		Name:           "blowup",
		NumReduceTasks: r,
		NewMapper: func() mapreduce.Mapper[int, string, string] {
			return &mapreduce.MapperFunc[int, string, string]{
				OnMap: func(ctx *mapreduce.MapContext[int, string, string], seed int) {
					for i := 0; i < memRecordsPerTask; i++ {
						key := fmt.Sprintf("key-%07d", (seed*31+i*17)%50000)
						ctx.Emit(key, pad[:memValuePad-len(key)]+key)
					}
				},
			}
		},
		NewReducer: func() mapreduce.Reducer[string, string, int] {
			return &mapreduce.ReducerFunc[string, string, int]{
				OnReduce: func(ctx *mapreduce.ReduceContext[int], key string, values []mapreduce.Rec[string, string]) {
					ctx.Emit(len(values))
				},
			}
		},
		Partition: mapreduce.HashPartition,
		Compare:   strings.Compare,
		Coding:    mapreduce.KeyCoding[string]{Encode: mapreduce.StringPrefixCode},
	}
}

// sampleHeapDuring runs fn while sampling runtime.ReadMemStats
// HeapAlloc, returning the observed peak in bytes.
func sampleHeapDuring(fn func()) uint64 {
	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	fn()
	close(stop)
	wg.Wait()
	return peak.Load()
}

func TestExternalShuffleMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-residency test is slow")
	}
	// Tighten the GC so sampled HeapAlloc tracks live bytes instead of
	// accumulation; restore afterwards.
	old := debug.SetGCPercent(50)
	defer debug.SetGCPercent(old)

	const m = 4
	input := make([][]int, m)
	for i := range input {
		input[i] = []int{i}
	}
	job := syntheticBlowupJob(8)

	run := func(e *mapreduce.Engine) (uint64, *mapreduce.Result[int, int]) {
		runtime.GC()
		var res *mapreduce.Result[int, int]
		var err error
		peak := sampleHeapDuring(func() {
			res, err = job.Run(e, input)
		})
		if err != nil {
			t.Fatal(err)
		}
		return peak, res
	}

	extPeak, extRes := run(&mapreduce.Engine{
		Parallelism: 4,
		Dataflow:    mapreduce.DataflowExternal,
		SpillBudget: memSpillBudget,
		TmpDir:      t.TempDir(),
	})
	typedPeak, typedRes := run(&mapreduce.Engine{Parallelism: 4})

	var spilled int64
	for i := range extRes.MapMetrics {
		spilled += extRes.MapMetrics[i].SpillBytesWritten
	}
	t.Logf("map output: %d records/task × %d tasks; spilled %d MB; peak heap typed=%d MB external=%d MB",
		memRecordsPerTask, m, spilled>>20, typedPeak>>20, extPeak>>20)

	// The on-disk shuffle volume must dwarf the budget (the ≥10×
	// out-of-core regime the acceptance criteria name).
	if spilled < 10*memSpillBudget {
		t.Fatalf("spilled only %d bytes, want >= 10x the %d budget", spilled, memSpillBudget)
	}
	// The typed engine holds the whole shuffle on the heap.
	if typedPeak < 30<<20 {
		t.Fatalf("typed peak heap %d MB implausibly low — shuffle no longer resident? (test broken)", typedPeak>>20)
	}
	// The external engine must not: its shuffle residency is bounded by
	// the per-task budget (decoded + encoded batches) and merge
	// buffers, a small constant factor of the budget per worker.
	if extPeak > typedPeak/2 {
		t.Fatalf("external peak heap %d MB not meaningfully below typed %d MB", extPeak>>20, typedPeak>>20)
	}
	// Results must still agree byte-for-byte.
	clearSpillCounters(extRes.MapMetrics)
	clearSpillCounters(extRes.ReduceMetrics)
	if fmt.Sprint(typedRes.Output) != fmt.Sprint(extRes.Output) {
		t.Fatal("external output diverges from typed under memory pressure")
	}
}
