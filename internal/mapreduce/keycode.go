package mapreduce

import "fmt"

// This file defines the order-preserving fixed-width binary key codes
// the typed engine uses as its sort/merge/group fast path — the
// counterpart of Hadoop's RawComparator model, where the shuffle
// compares serialized key bytes instead of deserialized objects. A
// strategy packs its composite key into a 128-bit code once per record
// at map-output time; every subsequent comparison in the spill sort and
// the reduce-side k-way merge heap is then one or two unsigned integer
// comparisons instead of a multi-field struct walk or string compare.
//
// # The encoding contract
//
// For a job with comparator Compare and coding C:
//
//  1. Order preservation (always required):
//     C.Encode(a) < C.Encode(b)  ⇒  Compare(a, b) < 0, and
//     Compare(a, b) == 0         ⇒  C.Encode(a) == C.Encode(b).
//     Equivalently: the code is a monotone prefix of the key order.
//     Unequal codes fully decide the comparison; equal codes decide
//     nothing unless the coding is Exact.
//  2. Exactness (optional): when Exact is set,
//     C.Encode(a) == C.Encode(b)  ⇒  Compare(a, b) == 0,
//     so the engine never falls back to Compare at all.
//  3. Group bits (optional): when GroupBits = g > 0, the leading g bits
//     of the code are an exact encoding of the grouping key:
//     Group(a, b) == 0  ⇔  the codes agree on their first g bits.
//
// Fixed-width-packable keys (PairRange's range‖block‖index, BlockSplit's
// block‖i‖j, …) get exact codes and never fall back. Variable-width keys
// (Basic's blocking-key strings, the BDM job's blockKey.partition) get a
// 16-byte big-endian prefix code: unequal prefixes decide the order,
// equal prefixes fall back to the struct comparator — exactly Hadoop's
// "compare bytes, deserialize only on a tie" discipline.
//
// DESIGN.md ("Binary key codes") documents the contract; per-key fuzz
// and property tests in the strategy packages enforce it.

// Code is a 128-bit order-preserving binary key code, compared
// lexicographically (Hi, then Lo).
type Code struct {
	Hi, Lo uint64
}

// Cmp returns -1, 0, or +1 comparing a and b lexicographically.
func (a Code) Cmp(b Code) int {
	switch {
	case a.Hi < b.Hi:
		return -1
	case a.Hi > b.Hi:
		return 1
	case a.Lo < b.Lo:
		return -1
	case a.Lo > b.Lo:
		return 1
	default:
		return 0
	}
}

// prefixEqual reports whether a and b agree on their first bits bits.
// bits must be in [1, 128].
func (a Code) prefixEqual(b Code, bits int) bool {
	if bits <= 64 {
		return a.Hi>>(64-uint(bits)) == b.Hi>>(64-uint(bits))
	}
	if bits >= 128 {
		return a == b
	}
	return a.Hi == b.Hi && a.Lo>>(128-uint(bits)) == b.Lo>>(128-uint(bits))
}

// KeyCoding declares a job key type's binary code. The zero value (nil
// Encode) disables the fast path; the engine then uses Compare/Group
// directly on the concrete keys (still boxing-free).
type KeyCoding[K any] struct {
	// Encode returns the key's order-preserving code (contract above).
	Encode func(K) Code
	// Exact marks the code as a complete encoding of the comparison key:
	// equal codes imply Compare == 0, so ties need no fallback.
	Exact bool
	// GroupBits, when > 0, is the number of leading code bits that
	// exactly encode the grouping key; keys group together iff those
	// bits agree. 0 means grouping falls back to the Group function.
	GroupBits int
}

// Verify checks the coding contract above on one pair of keys against
// the job's Compare and Group functions (group may be nil, meaning
// Group ≡ Compare) and returns a descriptive error on the first
// violation. It exists for the per-key fuzz and property tests each
// strategy package runs over its coding; the engine itself never calls
// it.
func (c KeyCoding[K]) Verify(compare, group func(a, b K) int, a, b K) error {
	ca, cb := c.Encode(a), c.Encode(b)
	cmp := compare(a, b)
	switch d := ca.Cmp(cb); {
	case d != 0 && d != sign(cmp):
		return fmt.Errorf("code order contradicts Compare: Encode(%v).Cmp(Encode(%v)) = %d, Compare = %d", a, b, d, cmp)
	case cmp == 0 && d != 0:
		return fmt.Errorf("equal keys got unequal codes: Compare(%v, %v) = 0 but codes differ", a, b)
	case c.Exact && d == 0 && cmp != 0:
		return fmt.Errorf("Exact coding collides: Encode(%v) == Encode(%v) but Compare = %d", a, b, cmp)
	}
	if c.GroupBits > 0 {
		g := cmp
		if group != nil {
			g = group(a, b)
		}
		if got, want := ca.prefixEqual(cb, c.GroupBits), g == 0; got != want {
			return fmt.Errorf("group bits contradict Group: prefixEqual(%d bits) = %v, Group(%v, %v) = %d", c.GroupBits, got, a, b, g)
		}
	}
	return nil
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	default:
		return 0
	}
}

// StringPrefixCode returns the 16-byte big-endian, zero-padded prefix
// code of s. Zero-padding is order-safe because 0x00 is the minimal
// byte: unequal codes order exactly like the strings, equal codes only
// say the first 16 bytes agree (callers must leave Exact unset).
func StringPrefixCode(s string) Code {
	return Code{Hi: stringWord(s, 0), Lo: stringWord(s, 8)}
}

// stringWord packs s[off:off+8] big-endian, zero-padding past the end.
func stringWord(s string, off int) uint64 {
	var w uint64
	for i := 0; i < 8; i++ {
		w <<= 8
		if j := off + i; j < len(s) {
			w |= uint64(s[j])
		}
	}
	return w
}
