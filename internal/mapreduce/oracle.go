package mapreduce

import "context"

// The boxing adapter: runs a typed Job[I, K, V, O] on the boxed
// any-based engine (the original dataflow, untouched since it was
// differentially validated) and converts the result back. This is the
// oracle path behind Engine.Dataflow == DataflowBoxed — every typed job
// can be re-executed with per-record interface boxing and compared
// byte-for-byte against the typed engine, which is exactly what the
// dataflow differential tests do.
//
// The adapter is deliberately thin: user mapper/reducer/combiner logic
// runs unchanged; only record representation and the comparator/
// partition/group functions are bridged. Binary key codes are not used
// on this path (the boxed engine predates them), so the oracle also
// cross-checks the codes' order/group behaviour against the plain
// comparators.
//
// Fault tolerance needs no bridging: attempts, retry, speculation, and
// the fault hook live in the engine-level task supervisor (attempt.go),
// which the boxed dataflow shares with the typed and external ones, so
// the oracle exercises the same supervision code the typed paths do.

func (j *Job[I, K, V, O]) runBoxed(ctx context.Context, e *Engine, input [][]I, sink *outputSink[O]) (*Result[I, O], error) {
	bj := &BoxedJob{
		Name:           j.Name,
		NumReduceTasks: j.NumReduceTasks,
		NewMapper: func() BoxedMapper {
			return &oracleMapper[I, K, V]{inner: j.NewMapper()}
		},
		NewReducer: func() BoxedReducer {
			return &oracleReducer[K, V, O]{inner: j.NewReducer()}
		},
		Partition: func(key any, r int) int { return j.Partition(key.(K), r) },
		Compare:   func(a, b any) int { return j.Compare(a.(K), b.(K)) },
	}
	if j.Group != nil {
		bj.Group = func(a, b any) int { return j.Group(a.(K), b.(K)) }
	}
	if j.NewCombiner != nil {
		bj.NewCombiner = func() BoxedReducer {
			return &oracleCombiner[I, K, V]{inner: j.NewCombiner()}
		}
	}

	binput := make([][]KeyValue, len(input))
	for i, part := range input {
		binput[i] = make([]KeyValue, len(part))
		for k, rec := range part {
			binput[i][k] = KeyValue{Key: rec}
		}
	}
	// The typed sink streams unboxed records; bridge it so the boxed
	// engine's reduce contexts can feed it directly.
	var bsink *outputSink[KeyValue]
	if sink != nil {
		bsink = &outputSink[KeyValue]{fn: func(kv KeyValue) error { return sink.fn(kv.Key.(O)) }}
	}
	bres, err := e.runBoxed(ctx, bj, binput, bsink)
	if err != nil {
		return nil, err
	}

	res := &Result[I, O]{
		Metrics:    bres.Metrics,
		Output:     make([]O, 0, len(bres.Output)),
		SideOutput: make([][]I, len(bres.SideOutput)),
	}
	for _, kv := range bres.Output {
		res.Output = append(res.Output, kv.Key.(O))
	}
	for i, side := range bres.SideOutput {
		if side == nil {
			continue
		}
		s := make([]I, len(side))
		for k, kv := range side {
			s[k] = kv.Key.(I)
		}
		res.SideOutput[i] = s
	}
	return res, nil
}

// oracleMapper feeds unboxed input records to the typed mapper while
// routing its emissions through the boxed context.
type oracleMapper[I, K, V any] struct {
	inner Mapper[I, K, V]
	ctx   MapContext[I, K, V]
}

func (o *oracleMapper[I, K, V]) Configure(m, r, partitionIndex int) {
	o.inner.Configure(m, r, partitionIndex)
}

func (o *oracleMapper[I, K, V]) Map(bctx *BoxedContext, kv KeyValue) {
	o.ctx.boxed = bctx
	o.inner.Map(&o.ctx, kv.Key.(I))
}

// oracleReducer unboxes each group into a reused []Rec and hands it to
// the typed reducer, emissions flowing through the boxed context.
type oracleReducer[K, V, O any] struct {
	inner Reducer[K, V, O]
	ctx   ReduceContext[O]
	vals  []Rec[K, V]
}

func (o *oracleReducer[K, V, O]) Configure(m, r, taskIndex int) {
	o.inner.Configure(m, r, taskIndex)
}

func (o *oracleReducer[K, V, O]) Reduce(bctx *BoxedContext, key any, values []KeyValue) {
	o.ctx.boxed = bctx
	o.vals = o.vals[:0]
	for _, kv := range values {
		o.vals = append(o.vals, Rec[K, V]{Key: kv.Key.(K), Value: kv.Value.(V)})
	}
	o.inner.Reduce(&o.ctx, key.(K), o.vals)
}

// oracleCombiner is the combiner analogue of oracleReducer: the typed
// combiner re-emits intermediate pairs through a boxed-backed
// MapContext.
type oracleCombiner[I, K, V any] struct {
	inner Combiner[I, K, V]
	ctx   MapContext[I, K, V]
	vals  []Rec[K, V]
}

func (o *oracleCombiner[I, K, V]) Configure(m, r, taskIndex int) {
	o.inner.Configure(m, r, taskIndex)
}

func (o *oracleCombiner[I, K, V]) Reduce(bctx *BoxedContext, key any, values []KeyValue) {
	o.ctx.boxed = bctx
	o.vals = o.vals[:0]
	for _, kv := range values {
		o.vals = append(o.vals, Rec[K, V]{Key: kv.Key.(K), Value: kv.Value.(V)})
	}
	o.inner.Combine(&o.ctx, key.(K), o.vals)
}
