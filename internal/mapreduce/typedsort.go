package mapreduce

import (
	"reflect"
	"sync"
)

// Typed counterpart of sort.go: a dedicated stable merge sort over
// []Rec[K, V] that calls the run's record comparator directly (binary
// key codes first, the job comparator only on code ties), plus the
// sync.Pool-backed scratch buffers the typed task hot paths reuse.
// Generic pools cannot be package-level globals, so each run owns a
// recPools instance shared by its tasks (see runState).

// sortRecsStable sorts recs with cmpRec, preserving the relative order
// of equal keys (the emission order within one map task, which the
// shuffle's stability guarantee is built on).
func (st *runState[I, K, V, O]) sortRecsStable(recs []Rec[K, V]) {
	n := len(recs)
	if n < 2 {
		return
	}
	if n <= insertionRun {
		st.insertionSortRecs(recs)
		return
	}
	for lo := 0; lo < n; lo += insertionRun {
		hi := lo + insertionRun
		if hi > n {
			hi = n
		}
		st.insertionSortRecs(recs[lo:hi])
	}
	scratch := st.pools.getRecBuf()
	if cap(scratch) < n {
		scratch = make([]Rec[K, V], n)
	}
	scratch = scratch[:n]
	for width := insertionRun; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			st.mergeRecRuns(recs[lo:hi], width, scratch)
		}
	}
	st.pools.putRecBuf(scratch)
}

// insertionSortRecs is a stable insertion sort (equal keys never swap).
func (st *runState[I, K, V, O]) insertionSortRecs(a []Rec[K, V]) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && st.cmpRec(&a[j], &a[j-1]) < 0; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// mergeRecRuns merges the two adjacent sorted runs a[:mid] and a[mid:]
// in place, taking from the left run on ties (stability). The left run
// is staged in scratch; the merged output is written from the front of
// a, which can never overtake the unread part of the right run.
func (st *runState[I, K, V, O]) mergeRecRuns(a []Rec[K, V], mid int, scratch []Rec[K, V]) {
	if st.cmpRec(&a[mid-1], &a[mid]) <= 0 {
		return // already in order
	}
	left := scratch[:mid]
	copy(left, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if st.cmpRec(&a[j], &left[i]) < 0 {
			a[k] = a[j]
			j++
		} else {
			a[k] = left[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = left[i]
		i++
		k++
	}
}

// ---- pooled typed scratch buffers ----

// recPools holds the reusable record and run-list buffers of one
// (K, V) instantiation. The capacity bound and clearing discipline
// mirror the boxed pools in sort.go.
type recPools[K, V any] struct {
	recBuf  sync.Pool
	runsBuf sync.Pool
}

// recPoolRegistry maps a Rec[K, V] type to its process-wide *recPools:
// generic package-level variables do not exist in Go, so this registry
// is how typed scratch buffers survive across runs and jobs the way the
// boxed engine's global pools do. Looked up once per Run, never on a
// per-record path.
var recPoolRegistry sync.Map // reflect.Type -> *recPools[K, V]

func poolFor[K, V any]() *recPools[K, V] {
	key := reflect.TypeOf((*Rec[K, V])(nil))
	if p, ok := recPoolRegistry.Load(key); ok {
		return p.(*recPools[K, V])
	}
	p, _ := recPoolRegistry.LoadOrStore(key, &recPools[K, V]{})
	return p.(*recPools[K, V])
}

// outPoolRegistry pools reduce-output buffers per output type O. A
// reduce task's emissions are copied into Result.Output at the end of
// Run, so the per-task buffers themselves are recyclable.
var outPoolRegistry sync.Map // reflect.Type -> *sync.Pool

func outPoolFor[O any]() *sync.Pool {
	key := reflect.TypeOf((*[]O)(nil))
	if p, ok := outPoolRegistry.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := outPoolRegistry.LoadOrStore(key, &sync.Pool{})
	return p.(*sync.Pool)
}

func getOutBuf[O any](pool *sync.Pool) []O {
	if b, ok := pool.Get().(*[]O); ok {
		return (*b)[:0]
	}
	return nil
}

func putOutBuf[O any](pool *sync.Pool, b []O) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)])
	b = b[:0]
	pool.Put(&b)
}

// getRecBuf returns an empty []Rec with whatever capacity a previous
// task of this run left behind.
func (p *recPools[K, V]) getRecBuf() []Rec[K, V] {
	if b, ok := p.recBuf.Get().(*[]Rec[K, V]); ok {
		return (*b)[:0]
	}
	return nil
}

// putRecBuf recycles a buffer. Oversized or empty backing arrays are
// dropped on the floor for the GC; recycled ones are cleared so the
// pool does not pin the previous task's keys and values.
func (p *recPools[K, V]) putRecBuf(b []Rec[K, V]) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)])
	b = b[:0]
	p.recBuf.Put(&b)
}

// getRunsBuf returns an empty [][]Rec with capacity for at least n runs.
func (p *recPools[K, V]) getRunsBuf(n int) [][]Rec[K, V] {
	if b, ok := p.runsBuf.Get().(*[][]Rec[K, V]); ok && cap(*b) >= n {
		return (*b)[:0]
	}
	return make([][]Rec[K, V], 0, n)
}

func (p *recPools[K, V]) putRunsBuf(b [][]Rec[K, V]) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)]) // drop bucket references
	b = b[:0]
	p.runsBuf.Put(&b)
}
