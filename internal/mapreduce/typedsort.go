package mapreduce

import (
	"reflect"
	"sync"
)

// Typed counterpart of sort.go: a dedicated stable merge sort over
// []Rec[K, V] that calls the run's record comparator directly (binary
// key codes first, the job comparator only on code ties), plus the
// sync.Pool-backed scratch buffers the typed task hot paths reuse.
// Generic pools cannot be package-level globals, so each run owns a
// recPools instance shared by its tasks (see runState).

// sortRecsStable sorts recs with cmpRec, preserving the relative order
// of equal keys (the emission order within one map task, which the
// shuffle's stability guarantee is built on). Large inputs split across
// the run's sortLimiter workers (parsort.go); the parallel sort is
// bitwise-identical to the serial one.
func (st *runState[I, K, V, O]) sortRecsStable(recs []Rec[K, V]) {
	n := len(recs)
	if n < 2 {
		return
	}
	if n <= insertionRun {
		insertionSortG(recs, st.cmp)
		return
	}
	scratch := st.pools.getRecBuf()
	if cap(scratch) < n {
		scratch = make([]Rec[K, V], n)
	}
	scratch = scratch[:n]
	stableSortParallelG(recs, scratch, st.limiter, st.cmp)
	st.pools.putRecBuf(scratch)
}

// sortBuckets sorts one map task's partition buckets, spreading large
// buckets across the run's free sort workers. Each bucket sort is
// independent (disjoint subslices of one flat array) and pulls its own
// pooled scratch, so the only coordination is the limiter itself.
func (st *runState[I, K, V, O]) sortBuckets(buckets [][]Rec[K, V]) {
	var wg sync.WaitGroup
	for _, b := range buckets {
		if len(b) < 2 {
			continue
		}
		if len(b) >= parallelSortMin && st.limiter.tryAcquire() {
			wg.Add(1)
			go func(b []Rec[K, V]) {
				defer wg.Done()
				defer st.limiter.release()
				st.sortRecsStable(b)
			}(b)
		} else {
			st.sortRecsStable(b)
		}
	}
	wg.Wait()
}

// ---- pooled typed scratch buffers ----

// recPools holds the reusable record and run-list buffers of one
// (K, V) instantiation. The capacity bound, clearing discipline, and
// box recycling mirror the boxed pools in sort.go (slicePool).
type recPools[K, V any] struct {
	recBuf  slicePool[Rec[K, V]]
	runsBuf slicePool[[]Rec[K, V]]
}

// recPoolRegistry maps a Rec[K, V] type to its process-wide *recPools:
// generic package-level variables do not exist in Go, so this registry
// is how typed scratch buffers survive across runs and jobs the way the
// boxed engine's global pools do. Looked up once per Run, never on a
// per-record path.
var recPoolRegistry sync.Map // reflect.Type -> *recPools[K, V]

func poolFor[K, V any]() *recPools[K, V] {
	key := reflect.TypeOf((*Rec[K, V])(nil))
	if p, ok := recPoolRegistry.Load(key); ok {
		return p.(*recPools[K, V])
	}
	p, _ := recPoolRegistry.LoadOrStore(key, &recPools[K, V]{})
	return p.(*recPools[K, V])
}

// outPoolRegistry pools reduce-output buffers per output type O. A
// reduce task's emissions are copied into Result.Output at the end of
// Run, so the per-task buffers themselves are recyclable.
var outPoolRegistry sync.Map // reflect.Type -> *slicePool[O]

func outPoolFor[O any]() *slicePool[O] {
	key := reflect.TypeOf((*[]O)(nil))
	if p, ok := outPoolRegistry.Load(key); ok {
		return p.(*slicePool[O])
	}
	p, _ := outPoolRegistry.LoadOrStore(key, &slicePool[O]{})
	return p.(*slicePool[O])
}

func getOutBuf[O any](pool *slicePool[O]) []O {
	return pool.get()[:0]
}

func putOutBuf[O any](pool *slicePool[O], b []O) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)])
	pool.put(b[:0])
}

// getRecBuf returns an empty []Rec with whatever capacity a previous
// task of this run left behind.
func (p *recPools[K, V]) getRecBuf() []Rec[K, V] {
	return p.recBuf.get()[:0]
}

// putRecBuf recycles a buffer. Oversized or empty backing arrays are
// dropped on the floor for the GC; recycled ones are cleared so the
// pool does not pin the previous task's keys and values.
func (p *recPools[K, V]) putRecBuf(b []Rec[K, V]) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)])
	p.recBuf.put(b[:0])
}

// getRunsBuf returns an empty [][]Rec with capacity for at least n runs.
func (p *recPools[K, V]) getRunsBuf(n int) [][]Rec[K, V] {
	if b := p.runsBuf.get(); cap(b) >= n {
		return b[:0]
	}
	return make([][]Rec[K, V], 0, n)
}

func (p *recPools[K, V]) putRunsBuf(b [][]Rec[K, V]) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)]) // drop bucket references
	p.runsBuf.put(b[:0])
}
