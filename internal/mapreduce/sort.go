package mapreduce

import "sync"

// This file holds the engine's allocation-conscious sorting machinery:
// a dedicated stable merge sort over []KeyValue that calls the job's
// comparator directly (no sort.Interface indirection, no closure over
// boxed indexes), and the sync.Pool-backed scratch buffers the task hot
// paths reuse. See DESIGN.md ("Allocation discipline").

// insertionRun is the run length below which insertion sort beats
// merging; it is also the initial width of the bottom-up merge.
const insertionRun = 24

// maxPooledCap bounds the capacity of slices returned to the pools so a
// single huge job cannot pin arbitrarily large buffers for the rest of
// the process.
const maxPooledCap = 1 << 16

// sortKVsStable sorts kvs by cmp over keys, preserving the relative
// order of equal keys (the emission order within one map task, which the
// shuffle's stability guarantee is built on).
func sortKVsStable(kvs []KeyValue, cmp func(a, b any) int) {
	n := len(kvs)
	if n < 2 {
		return
	}
	if n <= insertionRun {
		insertionSortKVs(kvs, cmp)
		return
	}
	for lo := 0; lo < n; lo += insertionRun {
		hi := lo + insertionRun
		if hi > n {
			hi = n
		}
		insertionSortKVs(kvs[lo:hi], cmp)
	}
	scratch := getKVBuf()
	if cap(scratch) < n {
		scratch = make([]KeyValue, n)
	}
	scratch = scratch[:n]
	for width := insertionRun; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			mergeRuns(kvs[lo:hi], width, scratch, cmp)
		}
	}
	putKVBuf(scratch)
}

// insertionSortKVs is a stable insertion sort (equal keys never swap).
func insertionSortKVs(a []KeyValue, cmp func(x, y any) int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && cmp(a[j].Key, a[j-1].Key) < 0; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// mergeRuns merges the two adjacent sorted runs a[:mid] and a[mid:] in
// place, taking from the left run on ties (stability). The left run is
// staged in scratch; the merged output is written from the front of a,
// which can never overtake the unread part of the right run.
func mergeRuns(a []KeyValue, mid int, scratch []KeyValue, cmp func(x, y any) int) {
	if cmp(a[mid-1].Key, a[mid].Key) <= 0 {
		return // already in order
	}
	left := scratch[:mid]
	copy(left, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if cmp(a[j].Key, left[i].Key) < 0 {
			a[k] = a[j]
			j++
		} else {
			a[k] = left[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = left[i]
		i++
		k++
	}
}

// ---- pooled scratch buffers ----

// slicePool recycles []T scratch buffers. sync.Pool can only hold
// pointers, and the obvious `pool.Put(&b)` heap-allocates a fresh
// slice-header box on every Put — which profiling showed as three of
// the engine's top allocation sites. The boxes themselves therefore
// round-trip through a second pool: get() strips the slice out of its
// box and parks the empty box for the next put() to reuse, so the
// steady state allocates nothing on either side.
type slicePool[T any] struct {
	bufs  sync.Pool
	boxes sync.Pool
}

func (p *slicePool[T]) get() []T {
	if b, ok := p.bufs.Get().(*[]T); ok {
		s := *b
		*b = nil
		p.boxes.Put(b)
		return s
	}
	return nil
}

func (p *slicePool[T]) put(s []T) {
	box, ok := p.boxes.Get().(*[]T)
	if !ok {
		box = new([]T)
	}
	*box = s
	p.bufs.Put(box)
}

var kvBufPool slicePool[KeyValue]

// getKVBuf returns an empty []KeyValue with whatever capacity a previous
// task left behind.
func getKVBuf() []KeyValue {
	return kvBufPool.get()[:0]
}

// putKVBuf recycles a buffer. Oversized or empty backing arrays are
// dropped on the floor for the GC; recycled ones are cleared so the
// pool does not pin the previous job's keys and values.
func putKVBuf(b []KeyValue) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)])
	kvBufPool.put(b[:0])
}

var int32BufPool slicePool[int32]

// getInt32Buf returns a length-n scratch slice with arbitrary contents.
// Misses allocate the next power-of-two capacity so slightly-growing
// request sequences (spill batches wobble around the byte budget)
// converge on one reused buffer instead of allocating every time.
func getInt32Buf(n int) []int32 {
	b := int32BufPool.get()
	if cap(b) < n {
		c := 1
		for c < n {
			c <<= 1
		}
		return make([]int32, n, c)
	}
	return b[:n]
}

func putInt32Buf(b []int32) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	int32BufPool.put(b[:0])
}

var runsBufPool slicePool[[]KeyValue]

// getRunsBuf returns an empty [][]KeyValue with capacity for at least n
// runs.
func getRunsBuf(n int) [][]KeyValue {
	b := runsBufPool.get()[:0]
	if cap(b) < n {
		return make([][]KeyValue, 0, n)
	}
	return b
}

func putRunsBuf(b [][]KeyValue) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)]) // drop bucket references
	runsBufPool.put(b[:0])
}
