package mapreduce

import "sync"

// This file holds the engine's allocation-conscious sorting machinery:
// a dedicated stable merge sort over []KeyValue that calls the job's
// comparator directly (no sort.Interface indirection, no closure over
// boxed indexes), and the sync.Pool-backed scratch buffers the task hot
// paths reuse. See DESIGN.md ("Allocation discipline").

// insertionRun is the run length below which insertion sort beats
// merging; it is also the initial width of the bottom-up merge.
const insertionRun = 24

// maxPooledCap bounds the capacity of slices returned to the pools so a
// single huge job cannot pin arbitrarily large buffers for the rest of
// the process.
const maxPooledCap = 1 << 16

// sortKVsStable sorts kvs by cmp over keys, preserving the relative
// order of equal keys (the emission order within one map task, which the
// shuffle's stability guarantee is built on).
func sortKVsStable(kvs []KeyValue, cmp func(a, b any) int) {
	n := len(kvs)
	if n < 2 {
		return
	}
	if n <= insertionRun {
		insertionSortKVs(kvs, cmp)
		return
	}
	for lo := 0; lo < n; lo += insertionRun {
		hi := lo + insertionRun
		if hi > n {
			hi = n
		}
		insertionSortKVs(kvs[lo:hi], cmp)
	}
	scratch := getKVBuf()
	if cap(scratch) < n {
		scratch = make([]KeyValue, n)
	}
	scratch = scratch[:n]
	for width := insertionRun; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			mergeRuns(kvs[lo:hi], width, scratch, cmp)
		}
	}
	putKVBuf(scratch)
}

// insertionSortKVs is a stable insertion sort (equal keys never swap).
func insertionSortKVs(a []KeyValue, cmp func(x, y any) int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && cmp(a[j].Key, a[j-1].Key) < 0; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// mergeRuns merges the two adjacent sorted runs a[:mid] and a[mid:] in
// place, taking from the left run on ties (stability). The left run is
// staged in scratch; the merged output is written from the front of a,
// which can never overtake the unread part of the right run.
func mergeRuns(a []KeyValue, mid int, scratch []KeyValue, cmp func(x, y any) int) {
	if cmp(a[mid-1].Key, a[mid].Key) <= 0 {
		return // already in order
	}
	left := scratch[:mid]
	copy(left, a[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < len(a) {
		if cmp(a[j].Key, left[i].Key) < 0 {
			a[k] = a[j]
			j++
		} else {
			a[k] = left[i]
			i++
		}
		k++
	}
	for i < mid {
		a[k] = left[i]
		i++
		k++
	}
}

// ---- pooled scratch buffers ----

var kvBufPool = sync.Pool{New: func() any { return new([]KeyValue) }}

// getKVBuf returns an empty []KeyValue with whatever capacity a previous
// task left behind.
func getKVBuf() []KeyValue {
	return (*kvBufPool.Get().(*[]KeyValue))[:0]
}

// putKVBuf recycles a buffer. Oversized or empty backing arrays are
// dropped on the floor for the GC; recycled ones are cleared so the
// pool does not pin the previous job's keys and values.
func putKVBuf(b []KeyValue) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	clear(b[:cap(b)])
	b = b[:0]
	kvBufPool.Put(&b)
}

var int32BufPool = sync.Pool{New: func() any { return new([]int32) }}

// getInt32Buf returns a length-n scratch slice with arbitrary contents.
func getInt32Buf(n int) []int32 {
	b := *int32BufPool.Get().(*[]int32)
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func putInt32Buf(b []int32) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	int32BufPool.Put(&b)
}

var runsBufPool = sync.Pool{New: func() any { return new([][]KeyValue) }}

// getRunsBuf returns an empty [][]KeyValue with capacity for at least n
// runs.
func getRunsBuf(n int) [][]KeyValue {
	b := (*runsBufPool.Get().(*[][]KeyValue))[:0]
	if cap(b) < n {
		return make([][]KeyValue, 0, n)
	}
	return b
}

func putRunsBuf(b [][]KeyValue) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	for i := range b[:cap(b)] {
		b[:cap(b)][i] = nil // drop bucket references
	}
	runsBufPool.Put(&b)
}
