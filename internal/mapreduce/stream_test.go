package mapreduce_test

// RunStream tests: streamed output must carry exactly the records a
// collecting run accumulates (same metrics, same side output), leave
// Result.Output empty, and surface sink errors as run failures — on all
// three dataflows.

import (
	"context"
	"errors"
	"reflect"
	"slices"
	"strings"
	"testing"

	"repro/internal/mapreduce"
)

func sortedPairs(ps []mapreduce.Pair[string, int]) []mapreduce.Pair[string, int] {
	out := append([]mapreduce.Pair[string, int](nil), ps...)
	slices.SortFunc(out, func(a, b mapreduce.Pair[string, int]) int {
		if c := strings.Compare(a.Key, b.Key); c != 0 {
			return c
		}
		return a.Value - b.Value
	})
	return out
}

func TestRunStreamMatchesRunContext(t *testing.T) {
	for _, dataflow := range []mapreduce.DataflowMode{
		mapreduce.DataflowTyped, mapreduce.DataflowBoxed, mapreduce.DataflowExternal,
	} {
		for _, par := range []int{1, 4} {
			e := &mapreduce.Engine{Parallelism: par, Dataflow: dataflow}
			if dataflow == mapreduce.DataflowExternal {
				e.SpillBudget = 64
				e.TmpDir = t.TempDir()
			}
			input := wordInput(3)
			collected, err := wordJob(4, false).RunContext(context.Background(), e, input)
			if err != nil {
				t.Fatal(err)
			}

			var streamed []mapreduce.Pair[string, int]
			res, err := wordJob(4, false).RunStream(context.Background(), e, input, func(p mapreduce.Pair[string, int]) error {
				streamed = append(streamed, p)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Output) != 0 {
				t.Fatalf("dataflow %v: RunStream accumulated %d output records", dataflow, len(res.Output))
			}
			// Emission order within a reduce task is preserved; across
			// tasks it is the completion interleaving, so compare
			// sequences at Parallelism 1 and multisets otherwise.
			got, want := streamed, collected.Output
			if par > 1 {
				got, want = sortedPairs(got), sortedPairs(want)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("dataflow %v par %d: streamed output differs from collected", dataflow, par)
			}
			// Everything but Output must be byte-identical.
			collected.Output = nil
			res.Output = nil
			if !reflect.DeepEqual(res, collected) {
				t.Fatalf("dataflow %v par %d: metrics/side output differ between stream and collect\nstream:  %+v\ncollect: %+v",
					dataflow, par, res.Metrics, collected.Metrics)
			}
		}
	}
}

func TestRunStreamSinkErrorFailsRun(t *testing.T) {
	sinkErr := errors.New("sink full")
	for _, dataflow := range []mapreduce.DataflowMode{
		mapreduce.DataflowTyped, mapreduce.DataflowBoxed, mapreduce.DataflowExternal,
	} {
		e := &mapreduce.Engine{Parallelism: 2, Dataflow: dataflow}
		if dataflow == mapreduce.DataflowExternal {
			e.SpillBudget = 64
			e.TmpDir = t.TempDir()
		}
		n := 0
		_, err := wordJob(4, false).RunStream(context.Background(), e, wordInput(3), func(p mapreduce.Pair[string, int]) error {
			n++
			if n > 2 {
				return sinkErr
			}
			return nil
		})
		if !errors.Is(err, sinkErr) {
			t.Fatalf("dataflow %v: err = %v, want the sink error", dataflow, err)
		}
	}
}

// TestRunStreamNilCallbackCollects pins the documented fallback: a nil
// callback behaves exactly like RunContext.
func TestRunStreamNilCallbackCollects(t *testing.T) {
	e := &mapreduce.Engine{}
	input := wordInput(2)
	want, err := wordJob(3, false).RunContext(context.Background(), e, input)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wordJob(3, false).RunStream(context.Background(), e, input, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("RunStream(nil) differs from RunContext")
	}
}
