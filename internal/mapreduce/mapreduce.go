// Package mapreduce implements a from-scratch MapReduce engine faithful
// to the execution model described in Section II of the paper (and to
// Hadoop's semantics where the paper's algorithms depend on them).
//
// A job consists of user map and reduce functions plus the three dataflow
// functions the paper's strategies rely on:
//
//	part  – assigns a map-output key to one of r reduce tasks,
//	comp  – total order on keys used to sort each reduce task's input,
//	group – equivalence on keys deciding which runs of sorted pairs are
//	        passed to a single reduce() invocation.
//
// All three operate on keys only, never values, exactly as in the model.
//
// The engine runs one map task per input partition (m = #partitions) and
// r reduce tasks. Map tasks execute concurrently on goroutines; each map
// task sorts its per-reduce-task output buckets at spill time, and every
// reduce task performs a streaming k-way merge of its m pre-sorted
// buckets, tie-breaking equal keys by map task index. This stable merge
// mirrors Hadoop's merge of per-map-task spill files and is load-bearing
// for BlockSplit: its reduce function assumes all values from input
// partition i arrive before those of partition j>i within one key group.
// See DESIGN.md for the full merge/stability model.
//
// The package provides two dataflow representations of that model:
//
//   - The typed engine (Job[I, K, V, O], the primary API): every record
//     holds concrete key/value types end to end — map output, spill
//     buckets, the map-side stable sort, the k-way merge heap, and the
//     reduce group buffers are all free of interface boxing — and an
//     optional order-preserving binary key code (KeyCoding) accelerates
//     sort, merge, and grouping, Hadoop-RawComparator-style.
//   - The boxed engine (BoxedJob, Engine.Run): the original any-keyed
//     dataflow, kept as the differential oracle. Job.Run routes through
//     it unchanged when Engine.Dataflow is DataflowBoxed, so every typed
//     job can be re-executed on the oracle and compared byte-for-byte.
package mapreduce

import (
	"context"
	"fmt"
	"log/slog"
	"slices"
	"sync"

	"repro/internal/obs"
)

// KeyValue is a single record flowing through the dataflow. Keys may have
// arbitrary structure (the strategies use composite key structs); the
// job's Compare/Group/Partition functions define their semantics.
type KeyValue struct {
	Key   any
	Value any
}

// BoxedMapper is instantiated once per map task. Configure receives the task's
// partition index before any Map call, mirroring Hadoop's
// BoxedMapper.configure — the paper's strategies use it to read the BDM and
// precompute routing tables.
type BoxedMapper interface {
	Configure(m, r, partitionIndex int)
	Map(ctx *BoxedContext, kv KeyValue)
}

// BoxedReducer is instantiated once per reduce task.
type BoxedReducer interface {
	Configure(m, r, taskIndex int)
	// Reduce is called once per key group with the group's first key and
	// all values in merged order. The values slice is only valid for the
	// duration of the call: the engine streams groups out of the shuffle
	// merge through a reused buffer. Implementations that need values
	// beyond the call must copy them.
	Reduce(ctx *BoxedContext, key any, values []KeyValue)
}

// BoxedJob describes one MapReduce job. NewMapper/NewReducer are factories so
// that concurrently executing tasks never share mutable state.
type BoxedJob struct {
	Name string

	// NumReduceTasks is r. The number of map tasks m always equals the
	// number of input partitions passed to Engine.Run.
	NumReduceTasks int

	NewMapper  func() BoxedMapper
	NewReducer func() BoxedReducer

	// Partition implements part: key -> reduce task in [0,r).
	Partition func(key any, numReduceTasks int) int
	// Compare implements comp: total order on keys (-1, 0, +1).
	Compare func(a, b any) int
	// Group implements group: keys a and b belong to the same reduce
	// call iff Group(a,b) == 0. It must be compatible with Compare
	// (groups are runs of the sorted order). When nil, Compare is used.
	Group func(a, b any) int

	// NewCombiner, when non-nil, is run over each map task's output
	// before the shuffle (grouped with the same Group/Compare), the
	// standard Hadoop combiner optimization the paper suggests for the
	// BDM job.
	NewCombiner func() BoxedReducer
}

func (j *BoxedJob) validate(numPartitions int) error {
	switch {
	case j.NumReduceTasks <= 0:
		return fmt.Errorf("mapreduce: job %q: NumReduceTasks must be > 0, got %d", j.Name, j.NumReduceTasks)
	case numPartitions <= 0:
		return fmt.Errorf("mapreduce: job %q: need at least one input partition", j.Name)
	case j.NewMapper == nil:
		return fmt.Errorf("mapreduce: job %q: NewMapper is required", j.Name)
	case j.NewReducer == nil:
		return fmt.Errorf("mapreduce: job %q: NewReducer is required", j.Name)
	case j.Partition == nil:
		return fmt.Errorf("mapreduce: job %q: Partition function is required", j.Name)
	case j.Compare == nil:
		return fmt.Errorf("mapreduce: job %q: Compare function is required", j.Name)
	}
	return nil
}

func (j *BoxedJob) group(a, b any) int {
	if j.Group != nil {
		return j.Group(a, b)
	}
	return j.Compare(a, b)
}

// ComparisonsCounter is the user-counter name under which the strategies'
// reduce functions record pair comparisons. It is by far the
// highest-frequency counter (one Inc per candidate pair), so BoxedContext.Inc
// routes it to a dedicated TaskMetrics field instead of the counter map.
const ComparisonsCounter = "comparisons"

// BoxedContext is passed to map and reduce calls for emitting output and
// updating counters. It is owned by a single task attempt; methods are
// not safe for concurrent use by multiple goroutines.
type BoxedContext struct {
	taskKind TaskKind
	taskIdx  int

	out     []KeyValue
	side    []KeyValue
	metrics *TaskMetrics
	// hook is the attempt's fault-injection binding (nil when the engine
	// has no FaultHook installed).
	hook *taskHook
}

// Emit appends a key-value pair to the task attempt's primary output.
// For map tasks the pair enters the shuffle; for reduce tasks it becomes
// job output once the attempt commits (under RunStream it is drained to
// the run's output sink at commit — the task-commit protocol: a failed
// or superseded attempt never publishes a record).
func (c *BoxedContext) Emit(key, value any) {
	c.hook.fireEmit()
	c.out = append(c.out, KeyValue{Key: key, Value: value})
	c.metrics.OutputRecords++
}

// SideEmit writes to the task's side output, bypassing the shuffle. The
// BDM job uses it for the "additionalOutput" of Algorithm 3: entities
// annotated with their blocking key, written per map task so the second
// job sees the identical input partitioning.
func (c *BoxedContext) SideEmit(key, value any) {
	c.side = append(c.side, KeyValue{Key: key, Value: value})
	c.metrics.SideOutputRecords++
}

// Inc adds delta to the named user counter for this task (e.g., the
// number of pair comparisons performed by a reduce task).
// ComparisonsCounter takes an allocation-free fast path.
func (c *BoxedContext) Inc(name string, delta int64) {
	if name == ComparisonsCounter {
		c.metrics.Comparisons += delta
		return
	}
	m := c.metrics.Counters
	if m == nil {
		// The map is created lazily on the first named counter: most
		// tasks only touch the Comparisons fast path and never pay for
		// the allocation.
		m = make(map[string]int64)
		c.metrics.Counters = m
	}
	m[name] += delta
}

// TaskKind distinguishes map from reduce tasks in metrics.
type TaskKind int

const (
	MapTask TaskKind = iota
	ReduceTask
)

func (k TaskKind) String() string {
	if k == MapTask {
		return "map"
	}
	return "reduce"
}

// TaskMetrics records the observable work of one task; the cluster
// simulator converts these into simulated execution time.
type TaskMetrics struct {
	Kind              TaskKind
	Index             int
	InputRecords      int64
	InputGroups       int64 // reduce only: number of reduce() invocations
	OutputRecords     int64
	SideOutputRecords int64
	// MaxGroupRecords is the largest value list passed to a single
	// reduce() call — the lower bound on the reduce task's in-memory
	// buffering, which is the paper's memory argument against Basic
	// (a whole block per call) and for splitting large blocks.
	MaxGroupRecords int64
	// Comparisons is the ComparisonsCounter value, stored outside the
	// Counters map because it is incremented once per candidate pair.
	Comparisons int64
	Counters    map[string]int64

	// The spill fields are only non-zero on the external dataflow
	// (DataflowExternal): SpillRuns counts the sorted runs a map task
	// flushed to disk, SpillBytesWritten the run-file bytes it wrote,
	// and SpillBytesRead the run bytes streamed back (by reduce tasks,
	// and by map tasks re-reading their own runs for the combiner).
	// They are deliberately excluded from the external≡typed
	// differential contract — everything else in TaskMetrics must be
	// byte-identical across dataflows.
	SpillRuns         int64
	SpillBytesWritten int64
	SpillBytesRead    int64
}

// Counter returns the named user counter (0 when absent).
func (m *TaskMetrics) Counter(name string) int64 {
	if name == ComparisonsCounter {
		return m.Comparisons
	}
	return m.Counters[name]
}

// Metrics is the execution-metrics part of a job result. It is shared
// by the typed and boxed engines, so metric consumers (the cluster
// simulator, the experiment harness) work with either dataflow.
type Metrics struct {
	JobName string
	// MapMetrics and ReduceMetrics are indexed by task index.
	MapMetrics    []TaskMetrics
	ReduceMetrics []TaskMetrics
	// MapOutputRecords is the total number of key-value pairs emitted by
	// the map phase after combining — the quantity plotted in Figure 12.
	MapOutputRecords int64

	// Attempt accounting of the fault-tolerance layer (attempt.go).
	// Attempts counts every task attempt started (retries and
	// speculative backups included), Retries the re-executions after a
	// failed attempt, SpeculativeLaunched the backup attempts launched
	// for stragglers, and SpeculativeWon the backups that finished
	// before their originals. On a fault-free, speculation-free run
	// Attempts == len(MapMetrics) + len(ReduceMetrics) and the other
	// three are zero. Like the TaskMetrics spill counters, all four are
	// excluded from the differential contract: they describe how the
	// run executed, not what it computed.
	Attempts            int64
	Retries             int64
	SpeculativeLaunched int64
	SpeculativeWon      int64
}

// Counter sums the named user counter over all map and reduce tasks.
func (m *Metrics) Counter(name string) int64 {
	var total int64
	for i := range m.MapMetrics {
		total += m.MapMetrics[i].Counter(name)
	}
	for i := range m.ReduceMetrics {
		total += m.ReduceMetrics[i].Counter(name)
	}
	return total
}

// BoxedResult is the outcome of a boxed-engine job execution.
type BoxedResult struct {
	Metrics
	// Output contains the concatenated reduce outputs in reduce task
	// order (within a task, in emission order).
	Output []KeyValue
	// SideOutput holds each map task's side output, indexed by map task
	// (= input partition) index.
	SideOutput [][]KeyValue
}

// ShuffleMode selects the reduce-side shuffle implementation.
type ShuffleMode int

const (
	// ShuffleKWayMerge (the default) streams each reduce task's input
	// out of a k-way merge of the pre-sorted per-map-task spill buckets,
	// passing key groups to Reduce without materializing the full task
	// input. Peak reduce memory is O(largest group), not O(task input).
	ShuffleKWayMerge ShuffleMode = iota
	// ShuffleConcatSort concatenates the buckets in map-task order and
	// re-sorts with a stable sort — the original engine's path, kept as
	// the reference oracle for differential tests and benchmarks.
	ShuffleConcatSort
)

// DataflowMode selects the record representation a typed Job runs on.
type DataflowMode int

const (
	// DataflowTyped (the default) executes on the typed engine: concrete
	// key/value types everywhere, optional binary key codes.
	DataflowTyped DataflowMode = iota
	// DataflowBoxed routes a typed Job through the boxed any-based
	// engine via a thin boxing adapter — the differential oracle.
	DataflowBoxed
	// DataflowExternal is the out-of-core dataflow: map output beyond
	// the per-task SpillBudget is flushed to sorted on-disk runs
	// (Hadoop's spill-file model), and reduce tasks stream an external
	// k-way merge over disk segments and the in-memory tail. Requires a
	// runio codec registered for the job's key and value types; results
	// are byte-identical to DataflowTyped except the TaskMetrics spill
	// counters. See external.go and DESIGN.md ("External dataflow").
	DataflowExternal
)

// Engine executes jobs. Parallelism bounds the number of concurrently
// executing tasks per phase; 0 means one goroutine per task.
type Engine struct {
	Parallelism int
	// Shuffle selects the reduce-side merge implementation. The zero
	// value is the streaming k-way merge; ShuffleConcatSort is the
	// reference concat+stable-sort path. Both produce byte-identical
	// results (the differential tests prove it).
	Shuffle ShuffleMode
	// Dataflow selects the record representation for typed Jobs (see
	// Job.Run). The boxed engine's Run ignores it.
	Dataflow DataflowMode
	// SpillBudget bounds, in encoded bytes, the map-output buffer a
	// task accumulates before flushing a sorted run to disk on the
	// external dataflow (0 = DefaultSpillBudget). Ignored by the other
	// dataflows.
	SpillBudget int64
	// TmpDir is where the external dataflow creates its per-run spill
	// directory ("" = the system temp dir). The directory is created on
	// demand and the per-run subdirectory is removed when Run returns,
	// error or not.
	TmpDir string
	// Retry is the task-attempt supervision policy: every map/reduce
	// task runs as a sequence of attempts governed by it (panic
	// recovery, retry with backoff, optional per-attempt timeout and
	// speculative straggler re-execution). The zero value retries
	// transient failures up to DefaultMaxAttempts with small capped
	// exponential backoff and no speculation. See RetryPolicy in
	// attempt.go and DESIGN.md ("Fault tolerance").
	Retry RetryPolicy
	// FaultHook, when non-nil, is invoked at the instrumented points of
	// every task attempt (task start, emit, spill, merge — see
	// FaultPoint) and may inject an error to fail the attempt:
	// deterministic fault injection for the chaos differential tests.
	// Nil costs one predictable branch per emit.
	FaultHook FaultHook
	// Remote, when non-nil, dispatches typed task attempts to worker
	// processes instead of running them in-process (the distributed
	// execution mode — see remote.go and internal/dist). It overrides
	// Dataflow for typed jobs; the boxed engine ignores it.
	Remote RemoteDispatcher
	// Obs, when non-nil, enables the observability layer: task-timeline
	// tracing, engine metrics, and structured logging (see internal/obs
	// and DESIGN.md "Observability"). Nil disables it entirely; the
	// disabled path costs one nil check per would-be event and never
	// allocates. Durations and event counts live only here — TaskMetrics
	// stays deterministic and inside the differential contract.
	Obs *obs.Observer
	// Log receives the engine's rare operational warnings (e.g. the
	// no-workers degradation notice). Nil falls back to Obs.Log, then to
	// slog.Default(). Silence it in tests with obs.Quiet().
	Log *slog.Logger
}

// logger resolves the engine's structured logger: Log, else the
// observer's, else the process default.
func (e *Engine) logger() *slog.Logger {
	if e.Log != nil {
		return e.Log
	}
	return e.Obs.Logger()
}

// beginJob opens the job-level trace span and interns the job name,
// returning the id the run's events carry. No-op (id 0) without an
// observer.
func (e *Engine) beginJob(name string) uint32 {
	o := e.Obs
	if o == nil {
		return 0
	}
	id := o.Tracer.InternJob(name)
	o.Tracer.Record(obs.Event{Type: obs.EvBegin, Kind: obs.KJob, Job: id, Task: -1})
	return id
}

func (e *Engine) endJob(jobID uint32) {
	if o := e.Obs; o != nil {
		o.Tracer.Record(obs.Event{Type: obs.EvEnd, Kind: obs.KJob, Job: jobID, Task: -1})
	}
}

// Run executes the job over the given input partitions and returns the
// result — the pre-context adapter over RunContext.
func (e *Engine) Run(job *BoxedJob, input [][]KeyValue) (*BoxedResult, error) {
	//erlint:ignore ctxflow pre-context compatibility adapter: callers without a context start at a fresh root here
	return e.RunContext(context.Background(), job, input)
}

// RunContext executes the job over the given input partitions and
// returns the result. Execution is deterministic: map outputs are
// shuffled with a stable, map-task-ordered merge and sorted with the
// job's Compare. Cancellation is checked between tasks (once ctx is
// done, no further task or attempt starts) and periodically between
// records inside cancellable attempts; RunContext returns an error
// wrapping ctx.Err().
func (e *Engine) RunContext(ctx context.Context, job *BoxedJob, input [][]KeyValue) (*BoxedResult, error) {
	return e.runBoxed(ctx, job, input, nil)
}

func (e *Engine) runBoxed(ctx context.Context, job *BoxedJob, input [][]KeyValue, sink *outputSink[KeyValue]) (*BoxedResult, error) {
	m := len(input)
	if err := job.validate(m); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	r := job.NumReduceTasks

	res := &BoxedResult{
		Metrics: Metrics{
			JobName:       job.Name,
			MapMetrics:    make([]TaskMetrics, m),
			ReduceMetrics: make([]TaskMetrics, r),
		},
		SideOutput: make([][]KeyValue, m),
	}

	jobID := e.beginJob(job.Name)
	defer e.endJob(jobID)

	// ---- Map phase ----
	// mapOut[mapTask][reduceTask] holds the bucketed map output,
	// published per task by the supervisor's commit step.
	mapOut := make([][][]KeyValue, m)
	mstats, merr := superviseTasks(ctx, e, MapTask, jobID, m,
		func(actx context.Context, hook *taskHook, task, attempt int) (boxedMapOut, error) {
			return e.runMapAttempt(actx, hook, job, task, m, input[task])
		},
		func(task int, out boxedMapOut) error {
			out.metrics.Kind = MapTask
			out.metrics.Index = task
			res.MapMetrics[task] = out.metrics
			res.SideOutput[task] = out.side
			mapOut[task] = out.buckets
			return nil
		},
		func(out boxedMapOut) {},
	)
	res.addStats(mstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	if merr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, merr)
	}
	for i := range res.MapMetrics {
		res.MapOutputRecords += res.MapMetrics[i].OutputRecords
	}

	// ---- Shuffle + merge + reduce phase ----
	// Reduce tasks run with the same bounded parallelism as map tasks;
	// each task's merge streams groups into Reduce, so merging and
	// reducing overlap within a task and across tasks. Output is
	// buffered per attempt and drained to the sink (or the collected
	// Output) only at commit — the task-commit protocol.
	reduceOut := make([][]KeyValue, r)
	rstats, rerr := superviseTasks(ctx, e, ReduceTask, jobID, r,
		func(actx context.Context, hook *taskHook, task, attempt int) (boxedReduceOut, error) {
			return e.runReduceAttempt(actx, hook, job, task, m, mapOut)
		},
		func(task int, out boxedReduceOut) error {
			out.metrics.Kind = ReduceTask
			out.metrics.Index = task
			res.ReduceMetrics[task] = out.metrics
			if sink != nil {
				sink.writeAll(out.out)
				putKVBuf(out.out)
				return nil
			}
			reduceOut[task] = out.out
			return nil
		},
		func(out boxedReduceOut) { putKVBuf(out.out) },
	)
	res.addStats(rstats)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, err)
	}
	if rerr != nil {
		return nil, fmt.Errorf("mapreduce: job %q: %w", job.Name, rerr)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			return nil, fmt.Errorf("mapreduce: job %q: output sink: %w", job.Name, err)
		}
	}
	var total int
	for j := range reduceOut {
		total += len(reduceOut[j])
	}
	res.Output = make([]KeyValue, 0, total)
	for j := range reduceOut {
		res.Output = append(res.Output, reduceOut[j]...)
		putKVBuf(reduceOut[j])
	}
	return res, nil
}

// boxedMapOut is one boxed map attempt's private output, published
// atomically when the supervisor commits the attempt.
type boxedMapOut struct {
	buckets [][]KeyValue
	side    []KeyValue
	metrics TaskMetrics
}

// boxedReduceOut is one boxed reduce attempt's private output.
type boxedReduceOut struct {
	out     []KeyValue
	metrics TaskMetrics
}

func (e *Engine) runMapAttempt(actx context.Context, hook *taskHook, job *BoxedJob, idx, m int, input []KeyValue) (mout boxedMapOut, err error) {
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return mout, err
	}
	r := job.NumReduceTasks
	ctx := &BoxedContext{taskKind: MapTask, taskIdx: idx, metrics: &mout.metrics, hook: hook}
	ctx.out = getKVBuf()
	mapper := job.NewMapper()
	mapper.Configure(m, r, idx)
	// Attempt cancellation (a losing speculative attempt, a per-attempt
	// timeout) is observed between input records; the gate keeps
	// background-context runs free of per-record checks.
	check := actx.Done() != nil
	for i, kv := range input {
		if check && i&cancelCheckMask == 0 && actx.Err() != nil {
			return mout, actx.Err()
		}
		ctx.metrics.InputRecords++
		mapper.Map(ctx, kv)
	}
	out := ctx.out
	if job.NewCombiner != nil {
		combined, cerr := e.combine(job, idx, m, out, ctx.metrics, hook)
		if cerr != nil {
			return mout, cerr
		}
		putKVBuf(out)
		out = combined
		// The combiner rewrote the task's output; fix the metric.
		ctx.metrics.OutputRecords = int64(len(out))
	}
	mout.side = ctx.side

	// Bucket by partition: count first, then carve exact-size buckets
	// out of one flat allocation instead of growing r slices.
	parts := getInt32Buf(len(out))
	counts := getInt32Buf(r)
	for i := range counts {
		counts[i] = 0
	}
	for i, kv := range out {
		p := job.Partition(kv.Key, r)
		if p < 0 || p >= r {
			putInt32Buf(parts)
			putInt32Buf(counts)
			// A deterministic user-logic bug: re-running cannot fix it.
			return mout, Fatal(fmt.Errorf("partition function returned %d for %d reduce tasks", p, r))
		}
		parts[i] = int32(p)
		counts[p]++
	}
	flat := make([]KeyValue, len(out))
	// Turn counts into running write offsets (counts[p] ends up holding
	// the bucket's end offset).
	next := int32(0)
	for p := 0; p < r; p++ {
		c := counts[p]
		counts[p] = next
		next += c
	}
	for i, kv := range out {
		p := parts[i]
		flat[counts[p]] = kv
		counts[p]++
	}
	buckets := make([][]KeyValue, r)
	start := int32(0)
	for p := 0; p < r; p++ {
		end := counts[p]
		buckets[p] = flat[start:end:end]
		start = end
	}
	putInt32Buf(parts)
	putInt32Buf(counts)
	putKVBuf(out)
	// Sort each bucket now (stable) so the reduce-side k-way merge only
	// has to interleave pre-sorted runs — the Hadoop spill-file model.
	for _, b := range buckets {
		sortKVsStable(b, job.Compare)
	}
	mout.buckets = buckets
	return mout, nil
}

// combine runs the job's combiner over one map task's output, grouped
// exactly like the reduce side would group it.
func (e *Engine) combine(job *BoxedJob, idx, m int, out []KeyValue, metrics *TaskMetrics, hook *taskHook) ([]KeyValue, error) {
	sortKVsStable(out, job.Compare)
	combiner := job.NewCombiner()
	combiner.Configure(m, job.NumReduceTasks, idx)
	cctx := &BoxedContext{taskKind: MapTask, taskIdx: idx, metrics: metrics, hook: hook}
	cctx.out = getKVBuf()
	for lo := 0; lo < len(out); {
		hi := lo + 1
		for hi < len(out) && job.group(out[lo].Key, out[hi].Key) == 0 {
			hi++
		}
		combiner.Reduce(cctx, out[lo].Key, out[lo:hi])
		lo = hi
	}
	return cctx.out, nil
}

func (e *Engine) runReduceAttempt(actx context.Context, hook *taskHook, job *BoxedJob, idx, m int, mapOut [][][]KeyValue) (rout boxedReduceOut, err error) {
	defer recoverAttempt(&err)
	if err := hook.fire(FaultTaskStart); err != nil {
		return rout, err
	}
	ctx := &BoxedContext{taskKind: ReduceTask, taskIdx: idx, metrics: &rout.metrics, hook: hook}
	ctx.out = getKVBuf()
	reducer := job.NewReducer()
	reducer.Configure(m, job.NumReduceTasks, idx)

	if e.Shuffle == ShuffleConcatSort {
		// Reference path (the original engine): concatenate the buckets
		// in map-task order and stable-sort the whole input. Kept as the
		// oracle the k-way merge is differentially tested against.
		var input []KeyValue
		for mi := 0; mi < m; mi++ {
			input = append(input, mapOut[mi][idx]...)
		}
		slices.SortStableFunc(input, func(a, b KeyValue) int {
			return job.Compare(a.Key, b.Key)
		})
		ctx.metrics.InputRecords = int64(len(input))
		reduceSortedRun(ctx, job, reducer, input)
		rout.out = ctx.out
		return rout, nil
	}

	// Streaming k-way merge of the pre-sorted spill buckets. Equal keys
	// are popped in map-task order (heap ties break on bucket index),
	// reproducing the concat+stable-sort order exactly.
	if err := hook.fire(FaultMerge); err != nil {
		return rout, err
	}
	runs := getRunsBuf(m)
	total := 0
	for mi := 0; mi < m; mi++ {
		if b := mapOut[mi][idx]; len(b) > 0 {
			runs = append(runs, b)
			total += len(b)
		}
	}
	ctx.metrics.InputRecords = int64(total)
	check := actx.Done() != nil
	switch len(runs) {
	case 0:
	case 1:
		// Single non-empty bucket: it is the task's sorted input; pass
		// group subslices straight through, no copying at all.
		reduceSortedRun(ctx, job, reducer, runs[0])
	default:
		mg := newKVMerger(runs, job.Compare)
		group := getKVBuf()
		kv, _ := mg.next()
		group = append(group, kv)
		for n := 0; ; n++ {
			if check && n&cancelCheckMask == 0 && actx.Err() != nil {
				return rout, actx.Err()
			}
			kv, ok := mg.next()
			if !ok {
				break
			}
			if job.group(group[0].Key, kv.Key) != 0 {
				emitGroup(ctx, reducer, group)
				group = group[:0]
			}
			group = append(group, kv)
		}
		emitGroup(ctx, reducer, group)
		putKVBuf(group)
		mg.release()
	}
	putRunsBuf(runs)
	rout.out = ctx.out
	return rout, nil
}

// reduceSortedRun walks one fully sorted input run and invokes the
// reducer once per key group, updating the group metrics.
func reduceSortedRun(ctx *BoxedContext, job *BoxedJob, reducer BoxedReducer, input []KeyValue) {
	for lo := 0; lo < len(input); {
		hi := lo + 1
		for hi < len(input) && job.group(input[lo].Key, input[hi].Key) == 0 {
			hi++
		}
		emitGroup(ctx, reducer, input[lo:hi])
		lo = hi
	}
}

// emitGroup invokes the reducer for one key group and maintains the
// group metrics.
func emitGroup(ctx *BoxedContext, reducer BoxedReducer, group []KeyValue) {
	ctx.metrics.InputGroups++
	if g := int64(len(group)); g > ctx.metrics.MaxGroupRecords {
		ctx.metrics.MaxGroupRecords = g
	}
	reducer.Reduce(ctx, group[0].Key, group)
}

// taskRunner is forEachTask's per-task hook. An interface rather than a
// func value so the supervisor can pass itself by pointer — conversion
// to taskRunner is allocation-free, where a closure per phase is not.
type taskRunner interface {
	runOne(ctx context.Context, task int)
}

// forEachTask runs r.runOne(ctx, i) for i in [0,n) with bounded
// parallelism. Cancellation is prompt between tasks: once ctx is done,
// no further task starts; tasks already executing run to completion and
// every worker goroutine is joined before forEachTask returns, so a
// cancelled phase leaks nothing. The caller detects cancellation via
// ctx.Err().
func (e *Engine) forEachTask(ctx context.Context, n int, r taskRunner) {
	workers := e.Parallelism
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			r.runOne(ctx, i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if ctx.Err() == nil {
					r.runOne(ctx, i)
				}
			}
		}()
	}
	// The ctx.Done case never fires for a background context (nil
	// channel); otherwise it stops feeding tasks as soon as ctx is done.
	done := ctx.Done()
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-done:
			break feed
		}
	}
	close(next)
	wg.Wait()
}
