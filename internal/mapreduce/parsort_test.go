package mapreduce

import (
	"math/rand"
	"reflect"
	"slices"
	"strconv"
	"testing"
)

// sortElem gives the differential tests an element with heavy key
// duplication (stability is observable through seq).
type sortElem struct {
	key int
	seq int
}

func cmpSortElem(a, b *sortElem) int { return a.key - b.key }

// fullLimiter returns a limiter with tokens free, as a fresh run with
// the given parallelism would see it.
func fullLimiter(parallelism int) *sortLimiter { return newSortLimiter(parallelism) }

// TestParallelSortMatchesSerial is the sort-level differential: for
// sizes straddling every chunking threshold and limiters of several
// widths, the parallel sort must produce the exact slice the serial
// sort (and the library's reference stable sort) produces — including
// the relative order of equal keys.
func TestParallelSortMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 2, 23, 24, 25, 100, parallelSortMin - 1, parallelSortMin, parallelSortMin + 1, 3 * parallelSortMin, 8*parallelSortMin + 17}
	for _, n := range sizes {
		for _, par := range []int{1, 2, 4, 16} {
			base := make([]sortElem, n)
			for i := range base {
				// Few distinct keys: most comparisons are ties, the
				// hard case for stability.
				base[i] = sortElem{key: rng.Intn(13), seq: i}
			}
			want := slices.Clone(base)
			slices.SortStableFunc(want, func(a, b sortElem) int { return a.key - b.key })

			serial := slices.Clone(base)
			scratch := make([]sortElem, n)
			stableSortSerialG(serial, scratch, cmpSortElem)
			if !slices.Equal(serial, want) {
				t.Fatalf("n=%d: serial sort diverges from reference", n)
			}

			par := par
			parallel := slices.Clone(base)
			stableSortParallelG(parallel, scratch, fullLimiter(par), cmpSortElem)
			if !slices.Equal(parallel, want) {
				t.Fatalf("n=%d parallelism=%d: parallel sort diverges from serial", n, par)
			}
		}
	}
}

// TestParallelSortExhaustedLimiter pins the degraded path: when every
// helper token is taken, the parallel entry point must fall back to the
// serial sort inline (same output, no deadlock) and leave the limiter's
// token count untouched.
func TestParallelSortExhaustedLimiter(t *testing.T) {
	lim := newSortLimiter(4)
	var held int
	for lim.tryAcquire() {
		held++
	}
	if held != 3 {
		t.Fatalf("limiter for parallelism 4 holds %d helper tokens, want 3", held)
	}
	n := 3 * parallelSortMin
	rng := rand.New(rand.NewSource(7))
	a := make([]sortElem, n)
	for i := range a {
		a[i] = sortElem{key: rng.Intn(5), seq: i}
	}
	want := slices.Clone(a)
	slices.SortStableFunc(want, func(x, y sortElem) int { return x.key - y.key })
	stableSortParallelG(a, make([]sortElem, n), lim, cmpSortElem)
	if !slices.Equal(a, want) {
		t.Fatal("exhausted-limiter sort diverges from reference")
	}
	for i := 0; i < held; i++ {
		lim.release()
	}
	if got := len(lim.tokens); got != 3 {
		t.Fatalf("limiter leaked tokens: %d free, want 3", got)
	}
}

// TestSortLimiterSerial pins the serial conventions: parallelism 1 (one
// worker, no helpers) and the nil limiter both refuse tokens.
func TestSortLimiterSerial(t *testing.T) {
	if lim := newSortLimiter(1); lim != nil {
		t.Fatalf("parallelism 1 should yield a nil (serial) limiter, got %d tokens", len(lim.tokens))
	}
	var nilLim *sortLimiter
	if nilLim.tryAcquire() {
		t.Fatal("nil limiter granted a token")
	}
}

// TestEngineSortParallelismDifferential runs a sort-heavy job (every
// record through one reduce partition, forcing one large bucket sort)
// across parallelism 1/2/4 on the typed and external dataflows and
// requires byte-identical Results — the engine-level proof that the
// parallel sort changes nothing observable.
func TestEngineSortParallelismDifferential(t *testing.T) {
	input := sortHeavyInput(4, 6000)
	scrub := func(res *Result[string, string]) {
		for _, ms := range [][]TaskMetrics{res.MapMetrics, res.ReduceMetrics} {
			for i := range ms {
				ms[i].SpillRuns = 0
				ms[i].SpillBytesWritten = 0
				ms[i].SpillBytesRead = 0
			}
		}
	}
	var want *Result[string, string]
	for _, par := range []int{1, 2, 4} {
		for _, flow := range []DataflowMode{DataflowTyped, DataflowExternal} {
			e := &Engine{Parallelism: par, Dataflow: flow, SpillBudget: 1 << 16, TmpDir: t.TempDir()}
			res, err := sortHeavyJob().Run(e, input)
			if err != nil {
				t.Fatalf("parallelism=%d dataflow=%v: %v", par, flow, err)
			}
			scrub(res)
			if want == nil {
				want = res
				continue
			}
			if !reflect.DeepEqual(want, res) {
				t.Fatalf("parallelism=%d dataflow=%v: Result diverges from parallelism=1 typed baseline", par, flow)
			}
		}
	}
}

// sortHeavyJob shuffles everything into two partitions with heavily
// duplicated keys so per-bucket sorts are large and tie-dense.
func sortHeavyJob() *Job[string, string, string, string] {
	return &Job[string, string, string, string]{
		Name:           "sort-heavy",
		NumReduceTasks: 2,
		NewMapper: func() Mapper[string, string, string] {
			return &MapperFunc[string, string, string]{
				OnMap: func(ctx *MapContext[string, string, string], rec string) {
					// Key = first 2 bytes: few distinct keys, many ties.
					ctx.Emit(rec[:2], rec)
				},
			}
		},
		NewReducer: func() Reducer[string, string, string] {
			return &ReducerFunc[string, string, string]{
				OnReduce: func(ctx *ReduceContext[string], key string, values []Rec[string, string]) {
					ctx.Emit(key + ":" + strconv.Itoa(len(values)) + ":" + values[0].Value + ":" + values[len(values)-1].Value)
				},
			}
		},
		Partition: func(key string, r int) int { return int(key[0]) % r },
		Compare: func(a, b string) int {
			switch {
			case a < b:
				return -1
			case a > b:
				return 1
			}
			return 0
		},
	}
}

func sortHeavyInput(parts, perPart int) [][]string {
	rng := rand.New(rand.NewSource(99))
	input := make([][]string, parts)
	for p := range input {
		recs := make([]string, perPart)
		for i := range recs {
			recs[i] = string(rune('a'+rng.Intn(4))) + string(rune('a'+rng.Intn(3))) + "-" + strconv.Itoa(p) + "-" + strconv.Itoa(i)
		}
		input[p] = recs
	}
	return input
}

// BenchmarkMapSortParallelism measures the map phase of the sort-heavy
// job at parallelism 1 vs 4: the per-bucket sorts dominate, so wall
// time should drop as sort workers are added (on multi-core hardware)
// while allocs/op stays flat — the sort helpers share the run's pooled
// scratch instead of allocating their own.
func BenchmarkMapSortParallelism(b *testing.B) {
	input := sortHeavyInput(4, 50000)
	for _, par := range []int{1, 2, 4} {
		b.Run("p="+strconv.Itoa(par), func(b *testing.B) {
			e := &Engine{Parallelism: par}
			j := sortHeavyJob()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Run(e, input); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
