package mapreduce_test

// Strategy-matrix differential test: for every redistribution strategy
// of the paper (Basic, BlockSplit, PairRange) × 1..4 map partitions ×
// 1..8 reduce tasks, the full two-job pipeline must produce Results —
// match pairs, comparison counts, and every TaskMetrics field including
// MaxGroupRecords — that are byte-identical between the streaming k-way
// merge shuffle and the reference concat+stable-sort oracle. BlockSplit
// is the critical case: its cross-product reduce function silently
// miscounts if equal keys ever arrive out of map-task order.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/entity"
	"repro/internal/er"
	"repro/internal/mapreduce"
	"repro/internal/similarity"
)

// skewedEntities builds a small catalog whose prefix-3 blocking yields
// one dominant block, a few mid-size blocks, and singletons — the skew
// shape that forces BlockSplit to split and PairRange to range-straddle.
func skewedEntities() []entity.Entity {
	var es []entity.Entity
	add := func(n int, stem string) {
		for i := 0; i < n; i++ {
			es = append(es, entity.New(
				fmt.Sprintf("%s-%03d", stem, i),
				"title",
				fmt.Sprintf("%s model %d edition", stem, i%7),
			))
		}
	}
	add(40, "canon eos")  // dominant block ("can")
	add(14, "nikon d850") // mid block
	add(9, "sony alpha")  // mid block
	add(5, "fuji xt")     // small block
	add(1, "leica m11")   // singleton
	add(1, "pentax k3")   // singleton
	return es
}

func TestStrategyMatrixShuffleDifferential(t *testing.T) {
	es := skewedEntities()
	matcher := func(a, b entity.Entity) (float64, bool) {
		s := similarity.LevenshteinSimilarity(a.Attr("title"), b.Attr("title"))
		return s, s >= 0.85
	}
	strategies := []core.Strategy{core.Basic{}, core.BlockSplit{}, core.PairRange{}}
	for m := 1; m <= 4; m++ {
		parts := entity.SplitRoundRobin(es, m)
		for r := 1; r <= 8; r++ {
			for _, strat := range strategies {
				for _, combiner := range []bool{false, true} {
					name := fmt.Sprintf("%s/m=%d/r=%d/combiner=%v", strat.Name(), m, r, combiner)
					cfg := er.Config{
						Strategy:    strat,
						Attr:        "title",
						BlockKey:    blocking.NormalizedPrefix(3),
						Matcher:     matcher,
						R:           r,
						UseCombiner: combiner,
					}

					cfg.Engine = &mapreduce.Engine{Parallelism: 2}
					merge, err := er.Run(parts, cfg)
					if err != nil {
						t.Fatalf("%s: merge run: %v", name, err)
					}

					cfg.Engine = &mapreduce.Engine{Parallelism: 2, Shuffle: mapreduce.ShuffleConcatSort}
					oracle, err := er.Run(parts, cfg)
					if err != nil {
						t.Fatalf("%s: oracle run: %v", name, err)
					}

					if !reflect.DeepEqual(merge.Matches, oracle.Matches) {
						t.Errorf("%s: match pairs diverge between shuffle modes", name)
					}
					if merge.Comparisons != oracle.Comparisons {
						t.Errorf("%s: comparisons %d (merge) != %d (oracle)", name, merge.Comparisons, oracle.Comparisons)
					}
					if !reflect.DeepEqual(merge.BDMResult, oracle.BDMResult) {
						t.Errorf("%s: BDM job Result (incl. TaskMetrics) diverges between shuffle modes", name)
					}
					if !reflect.DeepEqual(merge.MatchResult, oracle.MatchResult) {
						t.Errorf("%s: match job Result (incl. TaskMetrics) diverges between shuffle modes", name)
					}
				}
			}
		}
	}
}

// TestShuffleMaxGroupRecordsMatchesBlockSizes pins the semantics of the
// streamed MaxGroupRecords metric on a concrete case: with Basic and one
// reduce task, the largest group is exactly the dominant block.
func TestShuffleMaxGroupRecordsMatchesBlockSizes(t *testing.T) {
	es := skewedEntities()
	res, err := er.Run(entity.SplitRoundRobin(es, 3), er.Config{
		Strategy:   core.Basic{},
		Attr:       "title",
		BlockKey:   blocking.NormalizedPrefix(3),
		R:          1,
		RunOptions: er.RunOptions{Engine: &mapreduce.Engine{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MatchResult.ReduceMetrics[0].MaxGroupRecords; got != 40 {
		t.Errorf("MaxGroupRecords = %d, want 40 (the dominant block)", got)
	}
}
