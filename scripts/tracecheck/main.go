// Command tracecheck validates an exported obs trace file — the CI
// obs-smoke gate. For the chrome format it decodes the trace_event
// wrapper and checks the structural properties Perfetto needs: only
// X/i/M phases, non-negative durations, and process_name metadata for
// every pid; -min-complete and -min-worker-lanes turn "the trace is
// non-trivial" and "the run really dispatched to N workers" into hard
// assertions. For ndjson it checks every line parses and the final
// meta line's event count matches the lines before it.
//
// Usage:
//
//	go run ./scripts/tracecheck -format chrome -min-complete 1 -min-worker-lanes 2 trace.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args"`
}

func main() {
	var (
		format   = flag.String("format", "chrome", "trace format to validate: chrome or ndjson")
		minX     = flag.Int("min-complete", 1, "chrome: minimum number of complete (X) span events")
		minLanes = flag.Int("min-worker-lanes", 0, "chrome: minimum number of distinct worker process lanes (pid != 0)")
		require  = flag.String("require", "", "chrome: comma-separated event-name substrings that must each appear at least once (e.g. worker-death,reassign)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fail("expected exactly one trace file argument")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	switch *format {
	case "chrome":
		var wanted []string
		if *require != "" {
			wanted = strings.Split(*require, ",")
		}
		checkChrome(f, *minX, *minLanes, wanted)
	case "ndjson":
		checkNDJSON(f)
	default:
		fail("unknown -format %q", *format)
	}
}

func checkChrome(f *os.File, minX, minLanes int, require []string) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		fail("not valid trace_event JSON: %v", err)
	}
	var xs, instants int
	pids := map[int32]bool{}
	named := map[int32]string{}
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			xs++
			if ev.Dur < 0 {
				fail("event %d (%s): negative duration %g", i, ev.Name, ev.Dur)
			}
			pids[ev.Pid] = true
		case "i":
			instants++
			pids[ev.Pid] = true
		case "M":
			if ev.Name == "process_name" {
				name, _ := ev.Args["name"].(string)
				if name == "" {
					fail("event %d: process_name metadata without a name", i)
				}
				named[ev.Pid] = name
			}
		default:
			fail("event %d (%s): unexpected phase %q", i, ev.Name, ev.Ph)
		}
	}
	workerLanes := 0
	for pid, name := range named {
		if pid != 0 && name != "driver" {
			workerLanes++
		}
	}
	for pid := range pids {
		if named[pid] == "" {
			fail("pid %d has events but no process_name metadata", pid)
		}
	}
	if xs < minX {
		fail("only %d complete span(s), want >= %d", xs, minX)
	}
	if workerLanes < minLanes {
		fail("only %d worker lane(s), want >= %d", workerLanes, minLanes)
	}
	for _, want := range require {
		found := false
		for _, ev := range doc.TraceEvents {
			if strings.Contains(ev.Name, want) {
				found = true
				break
			}
		}
		if !found {
			fail("no event named like %q in the trace", want)
		}
	}
	fmt.Printf("tracecheck: ok — %d complete spans, %d instants, %d process lanes (%d worker)\n",
		xs, instants, len(named), workerLanes)
}

func checkNDJSON(f *os.File) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var events int
	var meta map[string]any
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			fail("line %d: %v", events+1, err)
		}
		if line["meta"] == "trace" {
			meta = line
			continue
		}
		if meta != nil {
			fail("event line after the meta line")
		}
		events++
	}
	if err := sc.Err(); err != nil {
		fail("%v", err)
	}
	if meta == nil {
		fail("missing final meta line")
	}
	if got, _ := meta["events"].(float64); int(got) != events {
		fail("meta says %d events, file has %d", int(got), events)
	}
	fmt.Printf("tracecheck: ok — %d ndjson events, meta consistent\n", events)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
