#!/usr/bin/env sh
# Runs the regression benchmarks (shuffle engine, comparison kernel,
# out-of-core dataflow) with -benchmem and writes a BENCH_<date>.json
# snapshot in the repo root, seeding the perf trajectory.
# Usage: scripts/bench.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."

benchtime="${1:-20x}"
date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

benches='BenchmarkShuffleMerge|BenchmarkEngineAllocs|BenchmarkSimilarityKernels|BenchmarkMatcherEndToEnd|BenchmarkExternalShuffle|BenchmarkExternalEndToEnd|BenchmarkRunioCodecs'
go test -run '^$' -bench "$benches" -benchtime="$benchtime" -benchmem . | tee "$tmp"

awk -v date="$date" -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, goversion
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, bytes, allocs
}
END { print "\n  ]\n}" }
' "$tmp" > "$out"

echo "wrote $out"
