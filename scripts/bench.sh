#!/usr/bin/env sh
# Runs the regression benchmarks (shuffle engine, comparison kernel,
# out-of-core dataflow) with -benchmem and writes a BENCH_<date>.json
# snapshot in the repo root, seeding the perf trajectory.
#
# Usage:
#   scripts/bench.sh [benchtime]           run + write BENCH_<date>.json
#   scripts/bench.sh compare OLD NEW       diff two snapshots; flags any
#                                          >10% ns/op or allocs/op
#                                          regression and exits 1
set -eu

cd "$(dirname "$0")/.."

# compare_snapshots OLD NEW: line-oriented parse of the snapshot format
# this script writes (one benchmark object per line). A benchmark only
# in one file is reported but never fails the gate; regressions beyond
# the threshold fail with exit 1. ns/op on shared noisy boxes swings
# ±30%, so the gate is advisory for time but hard for allocs — allocs
# are deterministic and a >10% jump is always a real regression.
compare_snapshots() {
    old="$1"; new="$2"
    awk -v oldfile="$old" -v newfile="$new" '
    function parse(file, names, ns, allocs,   line, name, n) {
        n = 0
        while ((getline line < file) > 0) {
            if (line !~ /"name":/) continue
            name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
            names[n++] = name
            v = line; sub(/.*"ns_per_op": /, "", v); sub(/[,}].*/, "", v)
            ns[name] = v
            v = line; sub(/.*"allocs_per_op": /, "", v); sub(/[,}].*/, "", v)
            allocs[name] = v
        }
        close(file)
        return n
    }
    function pct(o, n) { return (n - o) * 100.0 / o }
    BEGIN {
        parse(oldfile, onames, ons, oallocs)
        nn = parse(newfile, nnames, nns, nallocs)
        printf "%-52s %14s %14s %8s\n", "benchmark", "old", "new", "delta"
        bad = 0
        for (i = 0; i < nn; i++) {
            name = nnames[i]
            if (!(name in ons)) {
                printf "%-52s %14s %14s %8s\n", name, "-", nns[name] " ns", "new"
                continue
            }
            seen[name] = 1
            dns = pct(ons[name], nns[name])
            da = (oallocs[name] == "null" || nallocs[name] == "null") ? 0 : pct(oallocs[name], nallocs[name])
            flag = ""
            if (dns > 10) { flag = flag " TIME-REGRESSION"; bad = 1 }
            if (da > 10)  { flag = flag " ALLOC-REGRESSION"; bad = 1 }
            printf "%-52s %11s ns %11s ns %+7.1f%%%s\n", name, ons[name], nns[name], dns, flag
            if (oallocs[name] != "null")
                printf "%-52s %8s allocs %8s allocs %+7.1f%%\n", "", oallocs[name], nallocs[name], da
        }
        for (name in ons)
            if (!(name in seen))
                printf "%-52s %14s %14s %8s\n", name, ons[name] " ns", "-", "gone"
        exit bad
    }'
}

if [ "${1:-}" = "compare" ]; then
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh compare OLD.json NEW.json" >&2; exit 2; }
    compare_snapshots "$2" "$3"
    exit $?
fi

benchtime="${1:-20x}"
date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

benches='BenchmarkShuffleMerge|BenchmarkEngineAllocs|BenchmarkSimilarityKernels|BenchmarkMatcherEndToEnd|BenchmarkExternalShuffle|BenchmarkExternalEndToEnd|BenchmarkRunioCodecs'
go test -run '^$' -bench "$benches" -benchtime="$benchtime" -benchmem . | tee "$tmp"

awk -v date="$date" -v goversion="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, goversion
    n = 0
}
/^Benchmark/ {
    name = $1; iters = $2
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, iters, ns, bytes, allocs
}
END { print "\n  ]\n}" }
' "$tmp" > "$out"

echo "wrote $out"
