#!/usr/bin/env bash
# dist_smoke.sh — end-to-end distributed smoke with a mid-reduce kill.
#
# Builds the real binaries (ergen, ermatch, erworker), runs one match
# job locally and once distributed across three worker processes, and
# SIGKILLs one worker the instant it starts a reduce attempt (the
# worker self-reports via -mark-reduce and widens the kill window with
# -slow-reduce). The master must detect the death through its
# heartbeat/lease protocol, reassign the lost attempt, and finish with
# output byte-identical to the local run. Surviving workers are then
# stopped gracefully (SIGTERM) and must leave empty run directories.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
WORKER_PIDS=()
MASTER_PID=""
cleanup() {
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        kill -9 "$pid" 2>/dev/null || true
    done
    [ -n "$MASTER_PID" ] && kill "$MASTER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "dist-smoke: building binaries"
go build -o "$WORK/bin/" ./cmd/ergen ./cmd/ermatch ./cmd/erworker

"$WORK/bin/ergen" -dataset ds1 -scale 0.05 -out "$WORK/ds.csv"

# Local oracle run: same job, same flags, no master.
"$WORK/bin/ermatch" -in "$WORK/ds.csv" -strategy blocksplit -m 4 -r 16 \
    -out "$WORK/local.csv"

# Distributed run: the master waits for three registered workers
# before dispatching, and publishes its URL through the addr file.
# -trace captures the driver-side timeline across the kill, validated
# below: the reassignment must be visible in the exported trace.
ADDR_FILE="$WORK/master.addr"
"$WORK/bin/ermatch" -in "$WORK/ds.csv" -strategy blocksplit -m 4 -r 16 \
    -master 127.0.0.1:0 -master-addr-file "$ADDR_FILE" -workers 3 \
    -trace "$WORK/dist.trace.json" \
    -out "$WORK/dist.csv" &
MASTER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$ADDR_FILE" ] && break
    sleep 0.1
done
[ -s "$ADDR_FILE" ] || { echo "dist-smoke: FAIL: master never wrote $ADDR_FILE" >&2; exit 1; }
MASTER_URL="$(cat "$ADDR_FILE")"
echo "dist-smoke: master at $MASTER_URL"

# Three workers; the third is the victim — it marks its first reduce
# attempt in a file and stalls every reduce for 2s so the SIGKILL
# below always lands mid-task.
mkdir -p "$WORK/w1" "$WORK/w2" "$WORK/w3"
MARKER="$WORK/reduce.marker"
"$WORK/bin/erworker" -master "$MASTER_URL" -dir "$WORK/w1" -slots 2 &
WORKER_PIDS+=("$!")
"$WORK/bin/erworker" -master "$MASTER_URL" -dir "$WORK/w2" -slots 2 &
WORKER_PIDS+=("$!")
"$WORK/bin/erworker" -master "$MASTER_URL" -dir "$WORK/w3" -slots 1 \
    -mark-reduce "$MARKER" -slow-reduce 2s &
VICTIM=$!

for _ in $(seq 1 300); do
    [ -e "$MARKER" ] && break
    sleep 0.1
done
[ -e "$MARKER" ] || { echo "dist-smoke: FAIL: victim never started a reduce attempt" >&2; exit 1; }
kill -9 "$VICTIM"
echo "dist-smoke: SIGKILLed victim worker (pid $VICTIM) mid-task: $(cat "$MARKER")"

wait "$MASTER_PID"
MASTER_PID=""

cmp "$WORK/local.csv" "$WORK/dist.csv"
echo "dist-smoke: distributed output byte-identical to local run ($(wc -l < "$WORK/dist.csv") lines)"

# The exported trace must be Perfetto-loadable, show per-worker
# swimlanes (the victim plus at least one survivor — dispatch reuses
# freed workers, so an idle third lane is legitimate), and record the
# death and the reassignment of the in-flight attempt as instants.
go run ./scripts/tracecheck -format chrome -min-complete 1 \
    -min-worker-lanes 2 -require worker-death,reassign \
    "$WORK/dist.trace.json"

# Graceful shutdown: survivors must remove their private run dirs.
for pid in "${WORKER_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${WORKER_PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
done
WORKER_PIDS=()
for d in "$WORK/w1" "$WORK/w2"; do
    leftover="$(ls -A "$d")"
    if [ -n "$leftover" ]; then
        echo "dist-smoke: FAIL: $d not empty after graceful stop: $leftover" >&2
        exit 1
    fi
done
# The killed worker never got to clean up — its directory remaining is
# the expected SIGKILL shape, not a leak (it dies with the workspace).
echo "dist-smoke: graceful workers left empty run dirs"
echo "dist-smoke: OK"
