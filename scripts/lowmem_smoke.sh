#!/usr/bin/env sh
# Low-memory smoke for the out-of-core dataflow: executes the real
# MapReduce jobs of Figure 9 (erbench -exec) with GOMEMLIMIT set well
# below the shuffle volume and a small -spill-budget, asserting the run
# succeeds and leaves the spill directory empty. The CI job calls this;
# usage: scripts/lowmem_smoke.sh [scale] [budget] [gomemlimit]
set -eu

cd "$(dirname "$0")/.."

scale="${1:-0.25}"
budget="${2:-1m}"
memlimit="${3:-24MiB}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/erbench" ./cmd/erbench
mkdir "$tmp/spill"

echo "==> erbench -figure 9 -exec -scale $scale -spill-budget $budget (GOMEMLIMIT=$memlimit)"
GOMEMLIMIT="$memlimit" "$tmp/erbench" -figure 9 -exec -scale "$scale" \
	-spill-budget "$budget" -tmpdir "$tmp/spill"

if [ -n "$(ls -A "$tmp/spill")" ]; then
	echo "FAIL: spill directory not empty after run:" >&2
	ls -l "$tmp/spill" >&2
	exit 1
fi
echo "low-memory smoke OK (spill dir clean)"
