#!/usr/bin/env bash
# obs_smoke.sh — end-to-end observability smoke.
#
# Runs the distributed-vs-local erbench comparison with tracing and the
# introspection server enabled, polls the live endpoints while the
# master waits for workers, and validates the exported traces:
#
#   - the master's /status answers with the master role and worker table
#   - -obs-addr's /debug/vars exposes the engine and dist metric
#     families plus trace-buffer occupancy
#   - a worker's /status answers with the worker role
#   - the driver's chrome trace is well-formed trace_event JSON with
#     per-worker swimlanes (dispatch spans landed on >= 2 worker pids)
#   - a worker's ndjson trace parses line by line with a consistent
#     meta line
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
WORKER_PIDS=()
MASTER_PID=""
cleanup() {
    for pid in ${WORKER_PIDS[@]+"${WORKER_PIDS[@]}"}; do
        kill -9 "$pid" 2>/dev/null || true
    done
    [ -n "$MASTER_PID" ] && kill "$MASTER_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# fetch URL PATTERN LABEL — curl an endpoint and require a key in the body.
fetch() {
    local url="$1" pattern="$2" label="$3" body
    body="$(curl -sf "$url")" || { echo "obs-smoke: FAIL: $label: $url unreachable" >&2; exit 1; }
    grep -q "$pattern" <<<"$body" || {
        echo "obs-smoke: FAIL: $label: $url missing $pattern in: $body" >&2; exit 1; }
    echo "obs-smoke: $label ok ($url)"
}

echo "obs-smoke: building binaries"
go build -o "$WORK/bin/" ./cmd/erbench ./cmd/erworker

# The distributed comparison table: erbench hosts the master and
# dispatches through two erworker processes; -trace captures the
# driver-side timeline (job/phase/task spans plus per-worker dispatch
# spans), -obs-addr serves the live metrics.
ADDR_FILE="$WORK/master.addr"
"$WORK/bin/erbench" -scale 0.02 -master 127.0.0.1:0 \
    -master-addr-file "$ADDR_FILE" -workers 2 \
    -trace "$WORK/driver.trace.json" -obs-addr 127.0.0.1:0 \
    >"$WORK/bench.out" 2>"$WORK/bench.err" &
MASTER_PID=$!

for _ in $(seq 1 100); do
    [ -s "$ADDR_FILE" ] && break
    sleep 0.1
done
[ -s "$ADDR_FILE" ] || { cat "$WORK/bench.err" >&2; echo "obs-smoke: FAIL: master never wrote $ADDR_FILE" >&2; exit 1; }
MASTER_URL="$(cat "$ADDR_FILE")"

OBS_URL=""
for _ in $(seq 1 100); do
    OBS_URL="$(sed -n 's|^obs: serving /debug/vars at ||p' "$WORK/bench.err" | head -1)"
    [ -n "$OBS_URL" ] && break
    sleep 0.1
done
[ -n "$OBS_URL" ] || { cat "$WORK/bench.err" >&2; echo "obs-smoke: FAIL: -obs-addr URL never announced" >&2; exit 1; }
echo "obs-smoke: master at $MASTER_URL, obs at $OBS_URL"

# Live endpoints, polled while the master waits for registrations.
fetch "$MASTER_URL/status" '"role": "master"' "master /status role"
fetch "$MASTER_URL/status" '"workers"' "master /status worker table"
fetch "$OBS_URL/debug/vars" '"engine.attempts_total"' "/debug/vars engine metrics"
fetch "$OBS_URL/debug/vars" '"dist.master.dispatch_total"' "/debug/vars dist metrics"
fetch "$OBS_URL/debug/vars" '"trace"' "/debug/vars trace occupancy"

# Two workers; the first also exports its own ndjson trace on SIGTERM.
mkdir -p "$WORK/w1" "$WORK/w2"
"$WORK/bin/erworker" -master "$MASTER_URL" -dir "$WORK/w1" -slots 2 \
    -trace "$WORK/worker1.trace.ndjson" -trace-format ndjson \
    2>"$WORK/w1.err" &
WORKER_PIDS+=("$!")
"$WORK/bin/erworker" -master "$MASTER_URL" -dir "$WORK/w2" -slots 2 \
    2>"$WORK/w2.err" &
WORKER_PIDS+=("$!")

W1_URL=""
for _ in $(seq 1 100); do
    W1_URL="$(sed -n 's|^erworker: serving at \([^ ]*\).*|\1|p' "$WORK/w1.err" | head -1)"
    [ -n "$W1_URL" ] && break
    sleep 0.1
done
[ -n "$W1_URL" ] || { cat "$WORK/w1.err" >&2; echo "obs-smoke: FAIL: worker 1 never announced its URL" >&2; exit 1; }
fetch "$W1_URL/status" '"role": "worker"' "worker /status role"

wait "$MASTER_PID"
MASTER_PID=""
echo "obs-smoke: distributed comparison finished"

# Graceful worker stop flushes the worker-side trace.
for pid in "${WORKER_PIDS[@]}"; do
    kill -TERM "$pid" 2>/dev/null || true
done
for pid in "${WORKER_PIDS[@]}"; do
    wait "$pid" 2>/dev/null || true
done
WORKER_PIDS=()

# The driver trace must be Perfetto-loadable with a swimlane per worker
# (both registered workers received dispatches).
go run ./scripts/tracecheck -format chrome -min-complete 1 -min-worker-lanes 2 \
    "$WORK/driver.trace.json"
go run ./scripts/tracecheck -format ndjson "$WORK/worker1.trace.ndjson"

echo "obs-smoke: OK"
