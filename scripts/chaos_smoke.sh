#!/usr/bin/env bash
# chaos_smoke.sh — randomized fault-injection smoke under the race
# detector.
#
# Runs the fault-schedule differential suites (engine-level and
# ER-pipeline-level) plus the mid-phase cancellation tests with -race
# and a randomized chaos seed. The seed is echoed up front: a failing
# run reproduces with
#
#   CHAOS_SEED=<seed> scripts/chaos_smoke.sh
#
# because every chaos decision is a pure hash of the seed and the
# attempt's identity — no other randomness source exists in the suite.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-$RANDOM$RANDOM$RANDOM}"
echo "chaos-smoke: seed=$SEED (reproduce with CHAOS_SEED=$SEED $0)"

# The custom flag must follow the package list: the go tool stops
# parsing its own flags at the first one it does not recognize.
go test -race -count=1 \
    -run 'TestFaultScheduleDifferential|TestSpillFaultDifferential|TestERFaultScheduleDifferential|TestERChaosDifferential|TestCancelMidPhase' \
    ./internal/mapreduce ./internal/er \
    -chaos-seed="$SEED"

echo "chaos-smoke: OK (seed=$SEED)"
