#!/usr/bin/env sh
# CI gate: vet + build + test + benchmark smoke. Mirrors `make check`
# for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> erlint (invariant analyzers, via go vet -vettool)"
lint_start=$(date +%s)
mkdir -p bin
go build -o bin/erlint ./cmd/erlint
go vet -vettool=bin/erlint ./...
bin/erlint -list
echo "erlint took $(($(date +%s) - lint_start))s (go vet caches clean packages across runs)"

echo "==> gofmt"
fmt="$(gofmt -l .)"
if [ -n "$fmt" ]; then
	echo "gofmt needed on:"
	echo "$fmt"
	exit 1
fi

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> benchmark smoke (build + run every benchmark once)"
go test -run '^$' -bench . -benchtime=1x -benchmem ./...

echo "OK"
