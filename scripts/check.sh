#!/usr/bin/env sh
# CI gate: vet + build + test + benchmark smoke. Mirrors `make check`
# for environments without make.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet"
go vet ./...

echo "==> go build"
go build ./...

echo "==> go test"
go test ./...

echo "==> benchmark smoke (build + run every benchmark once)"
go test -run '^$' -bench . -benchtime=1x -benchmem ./...

echo "OK"
